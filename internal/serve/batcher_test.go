package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prestroid/internal/tensor"
	"prestroid/internal/workload"
)

// stubModel is a deterministic, instrumented models.Model: predictions are a
// pure function of the plan, Predict blocks for delay to force queueing, and
// an in-flight counter catches any violation of the single-goroutine model
// contract.
type stubModel struct {
	delay time.Duration

	inFlight   atomic.Int32
	violations atomic.Int32
	predicts   atomic.Int64
	evicted    atomic.Int64

	mu         sync.Mutex
	batchSizes []int
}

func (m *stubModel) enter() {
	if m.inFlight.Add(1) > 1 {
		m.violations.Add(1)
	}
}
func (m *stubModel) exit() { m.inFlight.Add(-1) }

func (m *stubModel) Name() string                     { return "stub" }
func (m *stubModel) ParamCount() int                  { return 1 }
func (m *stubModel) BatchBytes(batchSize int) int     { return batchSize }
func (m *stubModel) Prepare(traces []*workload.Trace) { m.enter(); defer m.exit() }
func (m *stubModel) TrainBatch(batch []*workload.Trace, labels *tensor.Tensor) float64 {
	return 0
}

func (m *stubModel) Predict(batch []*workload.Trace) *tensor.Tensor {
	m.enter()
	defer m.exit()
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	m.predicts.Add(1)
	m.mu.Lock()
	m.batchSizes = append(m.batchSizes, len(batch))
	m.mu.Unlock()
	out := tensor.New(len(batch), 1)
	for i, tr := range batch {
		out.Data[i] = stubScore(tr)
	}
	return out
}

func (m *stubModel) Evict(traces []*workload.Trace) {
	m.enter()
	defer m.exit()
	m.evicted.Add(int64(len(traces)))
}

// stubScore is the stub's deterministic "prediction" for a trace.
func stubScore(tr *workload.Trace) float64 {
	return float64(tr.Plan.NodeCount()) / 100
}

func stubEngine(t *testing.T, cfg Config, delay time.Duration) (*Engine, *stubModel) {
	t.Helper()
	m := &stubModel{delay: delay}
	eng := NewEngine(&Predictor{Model: m}, cfg)
	t.Cleanup(eng.Close)
	return eng, m
}

// TestEngineCoalesces drives 32 concurrent distinct queries through a slow
// stub model and checks that the batcher actually coalesces them, answers
// every one correctly, evicts every trace, and never calls the model from
// two goroutines at once.
func TestEngineCoalesces(t *testing.T) {
	eng, m := stubEngine(t, Config{MaxBatch: 8, MaxWait: 2 * time.Millisecond}, 2*time.Millisecond)
	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sql := fmt.Sprintf("SELECT a FROM t WHERE a > %d", i)
			p, err := eng.PredictSQL(sql)
			if err != nil {
				errs <- err
				return
			}
			want, err := (&Predictor{Model: &stubModel{}}).PredictSQL(sql)
			if err != nil {
				errs <- err
				return
			}
			if p.Normalized != want.Normalized || p.PlanNodes != want.PlanNodes {
				errs <- fmt.Errorf("query %d: coalesced %+v != serial %+v", i, p, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	em := eng.Snapshot()
	if em.Coalesced != clients {
		t.Fatalf("coalesced = %d, want %d", em.Coalesced, clients)
	}
	if em.Batches >= clients {
		t.Fatalf("no coalescing: %d batches for %d queries", em.Batches, clients)
	}
	maxBatch := 0
	m.mu.Lock()
	for _, sz := range m.batchSizes {
		if sz > maxBatch {
			maxBatch = sz
		}
	}
	m.mu.Unlock()
	if maxBatch < 2 {
		t.Fatalf("every batch had size 1 despite %d concurrent clients", clients)
	}
	if maxBatch > 8 {
		t.Fatalf("batch size %d exceeds MaxBatch 8", maxBatch)
	}
	if got := m.evicted.Load(); got != clients {
		t.Fatalf("evicted %d traces, want %d (memory would grow unbounded)", got, clients)
	}
	if v := m.violations.Load(); v != 0 {
		t.Fatalf("%d concurrent model calls observed; the contract requires serialisation", v)
	}
}

// TestEngineCacheHit checks that a repeated template — including cosmetic
// whitespace variants — is answered from the LRU without touching the model,
// and returns the identical Prediction.
func TestEngineCacheHit(t *testing.T) {
	eng, m := stubEngine(t, Config{MaxBatch: 4, CacheSize: 8}, 0)
	first, err := eng.PredictSQL("SELECT a FROM t WHERE a > 5")
	if err != nil {
		t.Fatal(err)
	}
	again, err := eng.PredictSQL("SELECT a FROM t WHERE a > 5")
	if err != nil {
		t.Fatal(err)
	}
	spaced, err := eng.PredictSQL("SELECT   a\n\tFROM t   WHERE a > 5")
	if err != nil {
		t.Fatal(err)
	}
	if first != again || first != spaced {
		t.Fatalf("cache returned different predictions: %+v / %+v / %+v", first, again, spaced)
	}
	if got := m.predicts.Load(); got != 1 {
		t.Fatalf("model ran %d times for one template, want 1", got)
	}
	em := eng.Snapshot()
	if em.CacheHits != 2 || em.CacheMisses != 1 {
		t.Fatalf("cache counters = %d hits / %d misses, want 2/1", em.CacheHits, em.CacheMisses)
	}
}

// TestEngineCacheBounded checks LRU eviction keeps the entry count at the
// configured cap.
func TestEngineCacheBounded(t *testing.T) {
	eng, _ := stubEngine(t, Config{MaxBatch: 1, CacheSize: 4}, 0)
	for i := 0; i < 10; i++ {
		if _, err := eng.PredictSQL(fmt.Sprintf("SELECT a FROM t WHERE a > %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if em := eng.Snapshot(); em.CacheEntries != 4 {
		t.Fatalf("cache entries = %d, want 4", em.CacheEntries)
	}
}

// TestEngineClosedFallsBack checks that predictions keep working on the
// serialised path after Close, and that Close is idempotent.
func TestEngineClosedFallsBack(t *testing.T) {
	eng, m := stubEngine(t, Config{MaxBatch: 8}, 0)
	want, err := eng.PredictSQL("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close()
	got, err := eng.PredictSQL("SELECT b FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got.Normalized != want.Normalized {
		t.Fatalf("post-close prediction diverged: %v vs %v", got.Normalized, want.Normalized)
	}
	if v := m.violations.Load(); v != 0 {
		t.Fatalf("%d concurrent model calls after close", v)
	}
}

// TestEngineSingleFlight checks that a cold burst of identical queries is
// deduplicated inside the batch: the model sees one row, every caller gets
// the same answer.
func TestEngineSingleFlight(t *testing.T) {
	eng, m := stubEngine(t, Config{MaxBatch: 16, MaxWait: 2 * time.Millisecond, CacheSize: 8}, 2*time.Millisecond)
	const clients = 8
	results := make([]Prediction, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := eng.PredictSQL("SELECT a FROM t WHERE a > 5")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if results[i] != results[0] {
			t.Fatalf("result %d diverged: %+v vs %+v", i, results[i], results[0])
		}
	}
	var rows int
	m.mu.Lock()
	for _, sz := range m.batchSizes {
		rows += sz
	}
	m.mu.Unlock()
	if rows >= clients {
		t.Fatalf("model predicted %d rows for %d identical in-flight queries; single-flight should dedup", rows, clients)
	}
}

func TestCanonicalSQL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT a FROM t", "SELECT a FROM t"},
		{"  SELECT   a \n\tFROM  t  ", "SELECT a FROM t"},
		{"SELECT a FROM t WHERE name = 'a  b'", "SELECT a FROM t WHERE name = 'a  b'"},
		{"SELECT a FROM t WHERE name =   'a  b'  AND x > 1", "SELECT a FROM t WHERE name = 'a  b' AND x > 1"},
		{"select A from T", "select A from T"}, // case is preserved
		// Comments are stripped like the lexer strips them, so a comment
		// that swallows a clause yields a different key than one that ends
		// at a newline before the clause.
		{"SELECT a FROM t -- note\nWHERE x >= 2", "SELECT a FROM t WHERE x >= 2"},
		{"SELECT a FROM t -- note WHERE x >= 2", "SELECT a FROM t"},
		{"SELECT a - b FROM t", "SELECT a - b FROM t"}, // lone minus is not a comment
		{"SELECT a FROM t WHERE name = '-- not a comment'", "SELECT a FROM t WHERE name = '-- not a comment'"},
	}
	for _, tc := range cases {
		if got := CanonicalSQL(tc.in); got != tc.want {
			t.Errorf("CanonicalSQL(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if CanonicalSQL("SELECT a FROM t -- note\nWHERE x >= 2") == CanonicalSQL("SELECT a FROM t -- note WHERE x >= 2") {
		t.Fatal("queries with different token streams share a cache key")
	}
}
