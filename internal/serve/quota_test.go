package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestQuotaBurstAndRefill pins the bucket arithmetic: burst requests pass
// immediately, the next is refused with a Retry-After of at least a second,
// and tokens accrue back at qps.
func TestQuotaBurstAndRefill(t *testing.T) {
	q := newClientQuota(2, 3)
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		if ok, _ := q.Allow("alice", now); !ok {
			t.Fatalf("request %d inside burst refused", i)
		}
	}
	ok, retry := q.Allow("alice", now)
	if ok {
		t.Fatal("burst+1 admitted")
	}
	if retry < time.Second {
		t.Fatalf("Retry-After %v below the 1s floor", retry)
	}
	// 500ms refills one token at 2 qps.
	if ok, _ := q.Allow("alice", now.Add(500*time.Millisecond)); !ok {
		t.Fatal("refilled token refused")
	}
	// Refill caps at burst: a long absence buys burst tokens, not more.
	later := now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := q.Allow("alice", later); !ok {
			t.Fatalf("post-idle request %d refused (burst cap lost)", i)
		}
	}
	if ok, _ := q.Allow("alice", later); ok {
		t.Fatal("idle time minted tokens past burst")
	}
}

// TestQuotaClientsIndependent checks one exhausted tenant cannot spend a
// neighbour's tokens.
func TestQuotaClientsIndependent(t *testing.T) {
	q := newClientQuota(1, 1)
	now := time.Unix(1000, 0)
	if ok, _ := q.Allow("alice", now); !ok {
		t.Fatal("alice's first request refused")
	}
	if ok, _ := q.Allow("alice", now); ok {
		t.Fatal("alice exceeded her burst")
	}
	if ok, _ := q.Allow("bob", now); !ok {
		t.Fatal("bob throttled by alice's spending")
	}
}

// TestQuotaBackwardsClock checks a non-monotonic wall clock neither mints
// tokens nor wedges the bucket.
func TestQuotaBackwardsClock(t *testing.T) {
	q := newClientQuota(1, 1)
	now := time.Unix(1000, 0)
	q.Allow("alice", now)
	if ok, _ := q.Allow("alice", now.Add(-time.Hour)); ok {
		t.Fatal("backwards clock minted a token")
	}
	// The bucket must recover relative to the latest observed time.
	if ok, _ := q.Allow("alice", now.Add(2*time.Second)); !ok {
		t.Fatal("bucket wedged after clock went backwards")
	}
}

// TestQuotaDisabled pins the gate: qps <= 0 yields a nil table.
func TestQuotaDisabled(t *testing.T) {
	if q := newClientQuota(0, 10); q != nil {
		t.Fatal("qps=0 built a quota table")
	}
	if q := newClientQuota(-1, 10); q != nil {
		t.Fatal("negative qps built a quota table")
	}
	// Sub-1 bursts round up so a conforming client can ever succeed.
	q := newClientQuota(1, 0)
	if ok, _ := q.Allow("alice", time.Unix(1000, 0)); !ok {
		t.Fatal("burst floor of 1 not applied")
	}
}

// TestQuotaSweepIsLossless checks the memory-pressure sweep: buckets that
// have refilled to full burst are dropped (a full bucket is behaviourally a
// fresh bucket), while actively throttled clients keep their debt.
func TestQuotaSweepIsLossless(t *testing.T) {
	q := newClientQuota(1, 2)
	now := time.Unix(1000, 0)
	s := q.stripeOf("debtor")
	q.Allow("debtor", now)
	q.Allow("debtor", now) // tokens now 0
	// Full and refilled-by-now buckets in the same stripe.
	s.mu.Lock()
	s.buckets["idle"] = &tokenBucket{tokens: 2, last: now}
	s.buckets["recovered"] = &tokenBucket{tokens: 0, last: now.Add(-time.Hour)}
	q.sweepLocked(s, now)
	_, debtorKept := s.buckets["debtor"]
	_, idleKept := s.buckets["idle"]
	_, recoveredKept := s.buckets["recovered"]
	s.mu.Unlock()
	if !debtorKept {
		t.Fatal("sweep dropped an actively throttled client's debt")
	}
	if idleKept || recoveredKept {
		t.Fatal("sweep kept full buckets alive")
	}
	// The swept debtor still cannot burst past its remaining allowance.
	if ok, _ := q.Allow("debtor", now); ok {
		t.Fatal("sweep minted tokens for a throttled client")
	}
}

// TestQuotaConcurrent hammers one hot key and many cold keys from parallel
// goroutines: admissions for the hot key must never exceed its burst (the
// clock is pinned), and the race detector must stay quiet.
func TestQuotaConcurrent(t *testing.T) {
	q := newClientQuota(5, 10)
	now := time.Unix(1000, 0)
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if ok, _ := q.Allow("hot", now); ok {
					admitted.Add(1)
				}
				q.Allow(fmt.Sprintf("cold-%d-%d", w, i), now)
			}
		}(w)
	}
	wg.Wait()
	if got := admitted.Load(); got != 10 {
		t.Fatalf("hot key admitted %d requests at a pinned clock, want exactly burst (10)", got)
	}
}
