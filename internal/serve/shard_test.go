package serve

import (
	"fmt"
	"testing"
	"time"

	"prestroid/internal/telemetry"
	"prestroid/internal/tensor"
	"prestroid/internal/workload"
)

// stubShards builds a sharded engine over n independent stub models so
// tests can see exactly which replica served which query.
func stubShards(t *testing.T, n int, cfg Config) (*ShardedEngine, []*stubModel) {
	t.Helper()
	stubs := make([]*stubModel, n)
	preds := make([]*Predictor, n)
	for i := range stubs {
		stubs[i] = &stubModel{}
		preds[i] = &Predictor{Model: stubs[i]}
	}
	se := NewShardedEngine(preds, cfg)
	t.Cleanup(se.Close)
	return se, stubs
}

// keyForShard returns SQL whose canonical key hashes to the wanted shard.
func keyForShard(t *testing.T, se *ShardedEngine, shard int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		sql := fmt.Sprintf("SELECT a FROM t WHERE a > %d", i)
		if se.shardOf(CanonicalSQL(sql)) == shard {
			return sql
		}
	}
	t.Fatalf("no key found for shard %d", shard)
	return ""
}

// TestShardedMatchesSerial is the replica-correctness gate: with any
// replica count, identical SQL yields byte-identical predictions to the
// serialised single-replica path — through the dispatcher, through every
// shard queried directly, and on a repeat (cached) lookup.
func TestShardedMatchesSerial(t *testing.T) {
	pred := newTestPredictor(t)
	queries := []string{
		"SELECT a FROM t WHERE a > 5",
		"SELECT b FROM t WHERE b < 3 AND a > 1",
		"SELECT a FROM t JOIN u ON t.id = u.id WHERE t.a > 7",
		"SELECT a, b FROM t WHERE a > 2 ORDER BY b LIMIT 10",
		"SELECT x FROM u WHERE x = 4",
	}
	serial := make([]Prediction, len(queries))
	for i, sql := range queries {
		p, err := pred.PredictSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = p
	}
	for _, replicas := range []int{1, 2, 4} {
		cfg := DefaultConfig()
		cfg.Replicas = replicas
		preds := Replicas(pred, replicas)
		if replicas > 1 {
			// Sharding must never mutate the caller's predictor: every
			// shard gets a clone, so pred keeps full-width forward fan-out
			// on the serialised path after the engine closes.
			for _, p := range preds {
				if p == pred || p.Model == pred.Model {
					t.Fatal("Replicas reused the caller's predictor or model")
				}
			}
		}
		se := NewShardedEngine(preds, cfg)
		if se.Shards() != replicas {
			t.Fatalf("built %d shards, want %d (model supports cloning)", se.Shards(), replicas)
		}
		for i, sql := range queries {
			got, err := se.PredictSQL(sql)
			if err != nil {
				t.Fatal(err)
			}
			if got != serial[i] {
				t.Fatalf("replicas=%d query %d: sharded %+v != serial %+v", replicas, i, got, serial[i])
			}
			again, err := se.PredictSQL(sql)
			if err != nil {
				t.Fatal(err)
			}
			if again != serial[i] {
				t.Fatalf("replicas=%d query %d: cached %+v != serial %+v", replicas, i, again, serial[i])
			}
			// Every shard — not just the home shard — must agree byte for
			// byte, or a saturation detour could change answers.
			for si, sh := range se.shards {
				direct, err := sh.PredictSQL(sql)
				if err != nil {
					t.Fatal(err)
				}
				if direct != serial[i] {
					t.Fatalf("replicas=%d shard %d query %d: %+v != serial %+v", replicas, si, i, direct, serial[i])
				}
			}
		}
		se.Close()
	}
}

// TestShardedDispatchStable checks the dispatcher sends a template to one
// home shard, every time — the property per-shard caching and single-flight
// dedup rest on.
func TestShardedDispatchStable(t *testing.T) {
	se, stubs := stubShards(t, 3, Config{MaxBatch: 4})
	sql := "SELECT a FROM t WHERE a > 5"
	for i := 0; i < 10; i++ {
		if _, err := se.PredictSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	served := 0
	for _, st := range stubs {
		if n := st.predicts.Load(); n > 0 {
			served++
			if n != 10 {
				t.Fatalf("home shard predicted %d times, want 10 (cache disabled)", n)
			}
		}
	}
	if served != 1 {
		t.Fatalf("one template touched %d shards, want exactly 1", served)
	}
}

// TestShardedSaturationFallback exercises pick's routing directly on
// unstarted engines, where queue depth is fully controlled: a saturated
// home shard diverts to the least-loaded shard, an unsaturated one keeps
// its traffic.
func TestShardedSaturationFallback(t *testing.T) {
	full := &Engine{jobs: make(chan *predictJob, 1)}
	idle := &Engine{jobs: make(chan *predictJob, 1)}
	se := &ShardedEngine{shards: []*Engine{full, idle}}

	full.jobs <- &predictJob{}
	if got := se.pick(full); got != idle {
		t.Fatal("saturated home shard did not divert to the least-loaded shard")
	}
	<-full.jobs
	if got := se.pick(full); got != full {
		t.Fatal("unsaturated home shard lost its traffic")
	}
}

// TestShardedDetourChecksHomeCache pins overload behaviour: a query whose
// saturated home shard already holds its cached answer is served from that
// cache, not recomputed on another shard. The engines here are unstarted
// and have no model, so any path other than the home cache hit would hang
// or panic.
func TestShardedDetourChecksHomeCache(t *testing.T) {
	home := &Engine{jobs: make(chan *predictJob, 1), tel: telemetry.NewShardGroup()}
	home.cache = newPredictionCache(4, 0, &home.tel.CacheHits, &home.tel.CacheMisses)
	other := &Engine{jobs: make(chan *predictJob, 1), tel: telemetry.NewShardGroup()}
	other.cache = newPredictionCache(4, 0, &other.tel.CacheHits, &other.tel.CacheMisses)
	se := &ShardedEngine{shards: []*Engine{home, other}}

	sql := keyForShard(t, se, 0)
	want := Prediction{CPUMinutes: 42, Normalized: 0.5, PlanNodes: 3}
	home.cache.Put(CanonicalSQL(sql), want, 0)
	home.jobs <- &predictJob{} // saturate the home shard

	got, err := se.PredictSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("detour returned %+v, want home-cached %+v", got, want)
	}
	if hits, misses := other.tel.CacheHits.Load(), other.tel.CacheMisses.Load(); hits != 0 || misses != 0 {
		t.Fatalf("detour shard cache touched (%d/%d) for a home-cached answer", hits, misses)
	}
}

// gateModel is a stub whose Predict blocks until released, signalling entry
// — a deterministic probe that two shards have their models inside Predict
// at the same instant, which the single-batcher engine can never do.
type gateModel struct {
	stubModel
	entered chan struct{}
	release chan struct{}
}

func (g *gateModel) Predict(batch []*workload.Trace) *tensor.Tensor {
	g.entered <- struct{}{}
	<-g.release
	return g.stubModel.Predict(batch)
}

// TestShardsOverlapModelCalls proves the architecture's point: two queries
// homed to different shards execute their model calls concurrently.
func TestShardsOverlapModelCalls(t *testing.T) {
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	preds := []*Predictor{
		{Model: &gateModel{entered: entered, release: release}},
		{Model: &gateModel{entered: entered, release: release}},
	}
	se := NewShardedEngine(preds, Config{MaxBatch: 1})
	t.Cleanup(se.Close)

	done := make(chan error, 2)
	for shard := 0; shard < 2; shard++ {
		sql := keyForShard(t, se, shard)
		go func() {
			_, err := se.PredictSQL(sql)
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-entered:
		case <-time.After(10 * time.Second):
			t.Fatal("shards never overlapped: only one model call in flight")
		}
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedMetricsAggregate checks the totals of one engine snapshot are
// the exact sum of its per-shard groups and that the cache budget is
// segmented.
func TestShardedMetricsAggregate(t *testing.T) {
	// Cache sized so each shard's segment (48/4 = 12) holds every key that
	// could land on it: no evictions, so the second round is all hits.
	se, _ := stubShards(t, 4, Config{MaxBatch: 2, CacheSize: 48})
	for i := 0; i < 24; i++ {
		if _, err := se.PredictSQL(fmt.Sprintf("SELECT a FROM t WHERE a > %d", i%12)); err != nil {
			t.Fatal(err)
		}
	}
	snap := se.Snapshot()
	agg := snap.Totals()
	per := snap.Shards
	if len(per) != 4 {
		t.Fatalf("shard metrics = %d entries, want 4", len(per))
	}
	var batches, coalesced, hits, misses int64
	var entries int
	for _, m := range per {
		batches += m.Batches
		coalesced += m.Coalesced
		hits += m.CacheHits
		misses += m.CacheMisses
		entries += m.CacheEntries
	}
	if agg.Batches != batches || agg.Coalesced != coalesced ||
		agg.CacheHits != hits || agg.CacheMisses != misses || agg.CacheEntries != entries {
		t.Fatalf("aggregate %+v != sum of shards", agg)
	}
	// Only misses reach a batcher: 12 distinct templates, queried twice.
	if agg.Coalesced != 12 {
		t.Fatalf("coalesced = %d, want 12 (cache hits bypass the batchers)", agg.Coalesced)
	}
	// 12 distinct templates queried twice: every repeat hits its home
	// shard's cache segment.
	if agg.CacheHits != 12 || agg.CacheMisses != 12 {
		t.Fatalf("cache counters = %d/%d, want 12/12", agg.CacheHits, agg.CacheMisses)
	}
}

// TestReplicasWithoutCloner checks graceful degradation: a model that can't
// clone serves single-shard no matter what was requested.
func TestReplicasWithoutCloner(t *testing.T) {
	pred := &Predictor{Model: &stubModel{}}
	preds := Replicas(pred, 4)
	if len(preds) != 1 || preds[0] != pred {
		t.Fatalf("Replicas fabricated %d predictors for a non-Cloner model", len(preds))
	}
}

// TestShardedClosedFallsBack mirrors the single-engine contract: Close is
// idempotent and later queries degrade to the serialised path.
func TestShardedClosedFallsBack(t *testing.T) {
	se, stubs := stubShards(t, 2, Config{MaxBatch: 4})
	want, err := se.PredictSQL("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	se.Close()
	se.Close()
	got, err := se.PredictSQL("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got.Normalized != want.Normalized {
		t.Fatalf("post-close prediction diverged: %v vs %v", got.Normalized, want.Normalized)
	}
	for i, st := range stubs {
		if v := st.violations.Load(); v != 0 {
			t.Fatalf("shard %d: %d concurrent model calls", i, v)
		}
	}
}
