package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"prestroid/internal/logicalplan"
	"prestroid/internal/telemetry"
	"prestroid/internal/workload"
)

// waitEngine builds an unstarted engine whose admission inputs — queue
// depth and EWMA service time — are fully controlled: no batcher goroutine
// runs, so whatever the test enqueues stays queued.
func waitEngine(queueCap, queued int, serviceMicros float64) *Engine {
	e := &Engine{jobs: make(chan *predictJob, queueCap), tel: telemetry.NewShardGroup()}
	for i := 0; i < queued; i++ {
		e.jobs <- &predictJob{}
	}
	if serviceMicros > 0 {
		e.tel.ServiceTime.Observe(serviceMicros)
	}
	return e
}

// TestAdmitDetourFirstShedLast drives admit() through the contract the
// tentpole names: home while it is inside the bound, detour to the best
// peer when home exceeds it, and shed only when every candidate does.
func TestAdmitDetourFirstShedLast(t *testing.T) {
	// Bound 10ms. Home: 20 queued × 1ms = 20ms, over. Peer A: 5 × 1ms =
	// 5ms, inside. Peer B: 15 × 1ms = 15ms, over.
	home := waitEngine(64, 20, 1000)
	peerA := waitEngine(64, 5, 1000)
	peerB := waitEngine(64, 15, 1000)
	se := &ShardedEngine{shards: []*Engine{home, peerA, peerB}, maxEstWaitMicros: 10_000}

	if sh, _, shed := se.admit(home); shed || sh != peerA {
		t.Fatalf("overloaded home did not detour to the in-bound peer (got shed=%v)", shed)
	}

	// Drain peer A past the bound too: now every candidate exceeds it.
	for i := 0; i < 15; i++ {
		peerA.jobs <- &predictJob{}
	}
	sh, minWait, shed := se.admit(home)
	if !shed || sh != nil {
		t.Fatalf("all candidates over bound: admit returned %v, shed=%v", sh, shed)
	}
	// min est-wait across candidates = peer B's 15ms, the Retry-After basis.
	if minWait != 15_000 {
		t.Fatalf("shed minWait = %v µs, want best candidate 15000", minWait)
	}

	// A home inside the bound keeps its traffic without scanning peers.
	calm := waitEngine(64, 2, 1000)
	se2 := &ShardedEngine{shards: []*Engine{calm, peerB}, maxEstWaitMicros: 10_000}
	if sh, _, shed := se2.admit(calm); shed || sh != calm {
		t.Fatal("in-bound home lost its traffic")
	}
}

// TestAdmitColdShardAdmits pins the cold-start contract: with no
// service-time samples the estimate is 0, so a deep queue alone never
// sheds — admission control needs evidence to refuse work.
func TestAdmitColdShardAdmits(t *testing.T) {
	home := waitEngine(64, 50, 0) // deep queue, no samples
	se := &ShardedEngine{shards: []*Engine{home}, maxEstWaitMicros: 1}
	if _, _, shed := se.admit(home); shed {
		t.Fatal("cold shard shed work with zero service-time evidence")
	}
}

// TestShedSurfacesOverloadError checks the dispatcher's refusal: every
// shard over the bound yields an *OverloadError pricing a Retry-After of
// at least a second, charged to the home shard's Shed counter — and a
// home-cached template is still served, because a cache hit never queues.
func TestShedSurfacesOverloadError(t *testing.T) {
	sh0 := waitEngine(64, 20, 1000)
	sh1 := waitEngine(64, 20, 1000)
	for _, e := range []*Engine{sh0, sh1} {
		e.cache = newPredictionCache(4, 0, &e.tel.CacheHits, &e.tel.CacheMisses)
	}
	se := &ShardedEngine{shards: []*Engine{sh0, sh1}, maxEstWaitMicros: 10_000}

	sql := keyForShard(t, se, 0)
	_, _, err := se.PredictSQLGenCtx(nil, sql)
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("full overload returned %v, want *OverloadError", err)
	}
	if over.RetryAfter() < time.Second {
		t.Fatalf("Retry-After %v below the 1s floor", over.RetryAfter())
	}
	if got := sh0.tel.Shed.Load(); got != 1 {
		t.Fatalf("home shard Shed = %d, want 1", got)
	}
	if got := sh1.tel.Shed.Load(); got != 0 {
		t.Fatalf("peer shard charged a shed it did not decide: %d", got)
	}

	// A cached answer rides through the same overload untouched: the
	// engines are unstarted, so any path but the home cache would hang.
	want := Prediction{CPUMinutes: 42, Normalized: 0.5, PlanNodes: 3}
	sh0.cache.Put(CanonicalSQL(sql), want, 0)
	got, _, err := se.PredictSQLGenCtx(nil, sql)
	if err != nil || got != want {
		t.Fatalf("cache hit shed under overload: %+v, %v", got, err)
	}
}

// TestExpiredDroppedBeforeDispatch checks the earliest deadline gate: work
// that arrives already expired is refused before canonical-key dispatch
// picks a batcher — the model never runs, nothing queues, and the expiry
// is charged to the home shard.
func TestExpiredDroppedBeforeDispatch(t *testing.T) {
	se, stubs := stubShards(t, 2, Config{MaxBatch: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sql := keyForShard(t, se, 0)
	_, _, err := se.PredictSQLGenCtx(ctx, sql)
	var expired *ExpiredError
	if !errors.As(err, &expired) {
		t.Fatalf("expired request returned %v, want *ExpiredError", err)
	}
	for i, st := range stubs {
		if n := st.predicts.Load(); n != 0 {
			t.Fatalf("shard %d ran %d model calls for already-expired work", i, n)
		}
	}
	if got := se.shards[0].tel.Expired.Load(); got != 1 {
		t.Fatalf("home Expired = %d, want 1", got)
	}
	if q := se.shards[0].queued(); q != 0 {
		t.Fatalf("expired work reached the batcher queue (depth %d)", q)
	}
}

// TestFlushDropsExpiredJobs pins the flush-side filter: an expired job is
// removed before the single-flight dedup, so it neither occupies a model
// row nor stands in as the representative for a live duplicate of its key.
func TestFlushDropsExpiredJobs(t *testing.T) {
	m := &stubModel{}
	eng := &Engine{pred: &Predictor{Model: m}, cfg: Config{MaxBatch: 8}, tel: telemetry.NewShardGroup()}
	dead, cancel := context.WithCancel(context.Background())
	cancel()

	mk := func(ctx context.Context, sql string) *predictJob {
		plan, err := logicalplan.PlanSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		tr := &workload.Trace{SQL: sql, Plan: plan, Template: -1}
		return &predictJob{ctx: ctx, trace: tr, key: CanonicalSQL(sql), done: make(chan predictResult, 1)}
	}
	expiredDup := mk(dead, "SELECT a FROM t WHERE a > 1") // same key as live
	live := mk(context.Background(), "SELECT a FROM t WHERE a > 1")
	expiredOnly := mk(dead, "SELECT b FROM t WHERE b > 2")

	eng.flush([]*predictJob{expiredDup, live, expiredOnly})

	select {
	case res := <-live.done:
		if want := stubScore(live.trace); res.y != want {
			t.Fatalf("live duplicate of an expired job got %v, want %v", res.y, want)
		}
	default:
		t.Fatal("live job starved: expired duplicate poisoned the dedup")
	}
	select {
	case <-expiredOnly.done:
		t.Fatal("expired job received a result")
	default:
	}
	if n := m.predicts.Load(); n != 1 {
		t.Fatalf("model ran %d times, want 1 (expired rows dropped)", n)
	}
	if got := eng.tel.Coalesced.Load(); got != 1 {
		t.Fatalf("coalesced = %d, want only the live job", got)
	}

	// An all-expired batch never reaches the model and flushes nothing.
	eng.flush([]*predictJob{mk(dead, "SELECT c FROM t")})
	if n := m.predicts.Load(); n != 1 {
		t.Fatal("all-expired batch still ran the model")
	}
	if got := eng.tel.Batches.Load(); got != 1 {
		t.Fatalf("batches = %d, want 1 (empty flush uncounted)", got)
	}
}

// TestDeadlineExpiresWhileQueued is the mid-queue half of the deadline
// contract: a request that expires while waiting in the batcher queue
// unblocks with *ExpiredError, is dropped by the eventual flush without a
// model slot, and leaves no cache entry behind for its key.
func TestDeadlineExpiresWhileQueued(t *testing.T) {
	m := &stubModel{}
	eng := &Engine{pred: &Predictor{Model: m}, cfg: Config{MaxBatch: 8},
		jobs: make(chan *predictJob, 8), tel: telemetry.NewShardGroup()}
	eng.cache = newPredictionCache(8, 0, &eng.tel.CacheHits, &eng.tel.CacheMisses)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	sql := "SELECT a FROM t WHERE a > 7"
	_, _, err := eng.predictKeyCtx(ctx, sql, CanonicalSQL(sql))
	var expired *ExpiredError
	if !errors.As(err, &expired) {
		t.Fatalf("queued expiry returned %v, want *ExpiredError", err)
	}
	if got := eng.tel.Expired.Load(); got != 1 {
		t.Fatalf("Expired = %d, want exactly 1", got)
	}

	// The dead job is still queued (no batcher runs); flushing it now must
	// not touch the model or the cache.
	j := <-eng.jobs
	eng.flush([]*predictJob{j})
	if n := m.predicts.Load(); n != 0 {
		t.Fatalf("expired job occupied a model slot (%d calls)", n)
	}
	if n := eng.cache.Len(); n != 0 {
		t.Fatalf("expired request left %d cache entries", n)
	}
}

// TestDeadlinesUnderConcurrentReloadRolls is the -race gate for the
// deadline machinery: clients with aggressive deadlines hammer the sharded
// dispatcher while weight rolls quiesce, drain and swap the shards under
// them. The invariants: the only error a client ever sees is expiry, no
// request observes a generation older than one it already saw for the same
// key (per-key monotonicity — the cache/generation state the issue names),
// and the engine still serves correctly afterwards.
func TestDeadlinesUnderConcurrentReloadRolls(t *testing.T) {
	pred := newTestPredictor(t)
	cfg := DefaultConfig()
	cfg.Replicas = 2
	cfg.MaxBatch = 4
	se := NewShardedEngine(Replicas(pred, 2), cfg)
	t.Cleanup(se.Close)

	const clients, perClient = 8, 60
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)
	var expiredSeen, served telemetry.Counter
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lastGen := make(map[string]int64)
			for i := 0; i < perClient; i++ {
				sql := fmt.Sprintf("SELECT a FROM t WHERE a > %d", i%10)
				// Budgets straddle the real service time, so some expire at
				// dispatch, some in the queue, and some are served.
				budget := time.Duration(50+137*((c+i)%7)) * time.Microsecond
				ctx, cancel := context.WithTimeout(context.Background(), budget)
				_, gen, err := se.PredictSQLGenCtx(ctx, sql)
				cancel()
				if err != nil {
					var expired *ExpiredError
					if !errors.As(err, &expired) {
						errs <- fmt.Errorf("client %d: non-expiry error %v", c, err)
						return
					}
					expiredSeen.Inc()
					continue
				}
				served.Inc()
				if prev, ok := lastGen[sql]; ok && gen < prev {
					errs <- fmt.Errorf("client %d: key %q generation went backwards %d -> %d", c, sql, prev, gen)
					return
				}
				lastGen[sql] = gen
			}
		}(c)
	}

	// Roll weight bundles continuously while the clients run. The bundles
	// are built up front: perturbedBundle may not call t.Fatal off the test
	// goroutine.
	bundles := make([][]byte, 4)
	for r := range bundles {
		bundles[r], _ = perturbedBundle(t, pred, float64(r+1)*0.01)
	}
	rollStop := make(chan struct{})
	rollDone := make(chan struct{})
	go func() {
		defer close(rollDone)
		for r := 0; ; r++ {
			if _, err := se.Reload(bytes.NewReader(bundles[r%len(bundles)])); err != nil && !errors.Is(err, ErrReloadInProgress) {
				errs <- fmt.Errorf("roll %d: %v", r, err)
				return
			}
			select {
			case <-rollStop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	wg.Wait()
	close(rollStop)
	<-rollDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The engine must still answer deadline-free traffic coherently.
	p1, err := se.PredictSQL("SELECT a FROM t WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := se.PredictSQL("SELECT a FROM t WHERE a > 1")
	if err != nil || p1 != p2 {
		t.Fatalf("post-roll predictions diverge: %+v vs %+v (%v)", p1, p2, err)
	}
	t.Logf("served %d, expired %d across %d requests",
		served.Load(), expiredSeen.Load(), clients*perClient)
}
