package serve

import (
	"runtime"

	"prestroid/internal/models"
)

// DefaultReplicas is the prestroidd default shard count: one per core,
// capped at 4 — each replica duplicates the model's weights, and past a
// handful of CPU-bound shards dispatch overhead outweighs the extra
// parallelism on typical hosts.
func DefaultReplicas() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// forwardLimiter is the optional model knob sharing a pool of forward-
// worker slots across replicas; Prestroid implements it.
type forwardLimiter interface {
	SetForwardSemaphore(sem chan struct{})
}

// Replicas builds n serving replicas of pred. For n > 1 every replica —
// including shard 0 — wraps a fresh model clone sharing pred's pipeline and
// normaliser, so the caller's model is never mutated and stays usable on
// the serialised path after the engine closes. Each replica gets its own
// Predictor (and thus its own serialisation mutex), so N batcher goroutines
// can run their models truly concurrently; to keep N concurrent flushes
// from oversubscribing the host with N×GOMAXPROCS conv workers, the clones
// share one pool of GOMAXPROCS forward-worker slots — concurrent flushes
// divide the cores, while a single busy shard on an otherwise idle engine
// still gets all of them. When n <= 1, or the model does not implement
// models.Cloner, only pred itself is returned — the caller degrades to one
// shard.
func Replicas(pred *Predictor, n int) []*Predictor {
	cl, ok := pred.Model.(models.Cloner)
	if !ok || n <= 1 {
		return []*Predictor{pred}
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	preds := make([]*Predictor, n)
	for i := range preds {
		m := cl.Clone()
		if fl, ok := m.(forwardLimiter); ok {
			fl.SetForwardSemaphore(sem)
		}
		preds[i] = &Predictor{Model: m, Pipe: pred.Pipe, Norm: pred.Norm}
	}
	return preds
}

// ShardedEngine fans inference out across N independent shards. Each shard
// is a full Engine — its own batcher goroutine, its own model replica and
// its own segment of the prediction cache — so shards share no mutable
// state and no mutex. A dispatcher hashes canonical SQL to a home shard,
// which preserves the per-shard single-flight dedup and cache locality of
// the single-engine design; when the home shard's queue is saturated, the
// query routes to the least-loaded shard instead. Rerouting is safe because
// replicas carry identical weights: every shard returns byte-identical
// predictions for identical SQL, so the only cost of a detour is a possible
// duplicate cache entry.
type ShardedEngine struct {
	shards []*Engine
}

// NewShardedEngine starts one batcher per predictor (typically built with
// Replicas). cfg.CacheSize is the total cache budget, split evenly across
// shards; cfg.Replicas is ignored — len(preds) decides the shard count.
// Callers must Close the engine to release the batcher goroutines.
func NewShardedEngine(preds []*Predictor, cfg Config) *ShardedEngine {
	if len(preds) == 0 {
		panic("serve: NewShardedEngine needs at least one predictor")
	}
	per := cfg
	if cfg.CacheSize > 0 {
		per.CacheSize = (cfg.CacheSize + len(preds) - 1) / len(preds)
	}
	se := &ShardedEngine{shards: make([]*Engine, len(preds))}
	for i, p := range preds {
		se.shards[i] = NewEngine(p, per)
	}
	return se
}

// Shards reports the live shard count (the effective replica count).
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Close flushes and stops every shard's batcher. Like Engine.Close it is
// idempotent, and queries arriving afterwards fall back to each shard's
// serialised path.
func (se *ShardedEngine) Close() {
	for _, sh := range se.shards {
		sh.Close()
	}
}

// shardOf returns the home shard index for a canonical key: FNV-1a inlined
// over the string, since this runs on every request — including cache hits
// — and hash/fnv would cost two allocations per call.
func (se *ShardedEngine) shardOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(len(se.shards)))
}

// pick resolves dispatch for a home shard: home itself, or — when its
// queue is saturated — the least-loaded shard, so one hot hash bucket
// cannot stall while other replicas sit idle.
func (se *ShardedEngine) pick(home *Engine) *Engine {
	if len(se.shards) == 1 || !home.saturated() {
		return home
	}
	best := home
	for _, sh := range se.shards {
		if sh.queued() < best.queued() {
			best = sh
		}
	}
	return best
}

// PredictSQL canonicalises the query once, dispatches it to a shard and
// returns that shard's prediction. The single-engine guarantee carries
// over: identical SQL yields byte-identical predictions regardless of
// replica count or which shard answered.
func (se *ShardedEngine) PredictSQL(sql string) (Prediction, error) {
	key := CanonicalSQL(sql)
	home := se.shards[se.shardOf(key)]
	sh := se.pick(home)
	if sh == home {
		return home.predictKey(sql, key)
	}
	// Saturation detour: the home cache segment never touches the jobs
	// queue, so a cached answer is still the cheapest path — without this
	// check, hot templates would be recomputed on another shard exactly
	// when the service is overloaded.
	if p, ok := home.cachePeek(key); ok {
		return p, nil
	}
	p, err := sh.predictKey(sql, key)
	if err == nil {
		// Deposit the result where future lookups will hash: an entry
		// stranded only on the detour shard is unreachable once the home
		// queue drains.
		home.cachePut(key, p)
	}
	return p, err
}

// aggregate sums per-shard snapshots into one Metrics. Callers that report
// aggregates next to the per-shard breakdown must aggregate one snapshot
// rather than snapshotting twice, or the two views drift under live
// traffic.
func aggregate(per []Metrics) Metrics {
	agg := Metrics{BatchHist: make(map[string]int64, len(batchBuckets))}
	for _, m := range per {
		agg.Batches += m.Batches
		agg.Coalesced += m.Coalesced
		agg.CacheHits += m.CacheHits
		agg.CacheMisses += m.CacheMisses
		agg.CacheEntries += m.CacheEntries
		agg.Queued += m.Queued
		for k, v := range m.BatchHist {
			agg.BatchHist[k] += v
		}
	}
	return agg
}

// Metrics returns the aggregate counter snapshot summed across every shard.
func (se *ShardedEngine) Metrics() Metrics {
	return aggregate(se.ShardMetrics())
}

// ShardMetrics returns one counter snapshot per shard, index-aligned with
// the dispatcher's shard numbering.
func (se *ShardedEngine) ShardMetrics() []Metrics {
	out := make([]Metrics, len(se.shards))
	for i, sh := range se.shards {
		out[i] = sh.Metrics()
	}
	return out
}
