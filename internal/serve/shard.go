package serve

import (
	"runtime"
	"sync"
	"sync/atomic"

	"prestroid/internal/logicalplan"
	"prestroid/internal/models"
	"prestroid/internal/telemetry"
)

// DefaultReplicas is the prestroidd default shard count: one per core,
// capped at 4 — each replica duplicates the model's weights, and past a
// handful of CPU-bound shards dispatch overhead outweighs the extra
// parallelism on typical hosts.
func DefaultReplicas() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// forwardLimiter is the optional model knob sharing a pool of forward-
// worker slots across replicas; Prestroid implements it.
type forwardLimiter interface {
	SetForwardSemaphore(sem chan struct{})
}

// Replicas builds n serving replicas of pred. For n > 1 every replica —
// including shard 0 — wraps a fresh model clone sharing pred's pipeline and
// normaliser, so the caller's model is never mutated and stays usable on
// the serialised path after the engine closes. Each replica gets its own
// Predictor (and thus its own serialisation mutex), so N batcher goroutines
// can run their models truly concurrently; to keep N concurrent flushes
// from oversubscribing the host with N×GOMAXPROCS conv workers, the clones
// share one pool of GOMAXPROCS forward-worker slots — concurrent flushes
// divide the cores, while a single busy shard on an otherwise idle engine
// still gets all of them. When n <= 1, or the model does not implement
// models.Cloner, only pred itself is returned — the caller degrades to one
// shard.
func Replicas(pred *Predictor, n int) []*Predictor {
	cl, ok := pred.Model.(models.Cloner)
	if !ok || n <= 1 {
		return []*Predictor{pred}
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	preds := make([]*Predictor, n)
	for i := range preds {
		m := cl.Clone()
		if fl, ok := m.(forwardLimiter); ok {
			fl.SetForwardSemaphore(sem)
		}
		preds[i] = &Predictor{Model: m, Pipe: pred.Pipe, Norm: pred.Norm}
	}
	return preds
}

// ShardedEngine fans inference out across N independent shards. Each shard
// is a full Engine — its own batcher goroutine, its own model replica and
// its own segment of the prediction cache — so shards share no mutable
// state and no mutex. A dispatcher hashes canonical SQL to a home shard,
// which preserves the per-shard single-flight dedup and cache locality of
// the single-engine design; when the home shard's queue is saturated, the
// query routes to the least-loaded shard instead. Rerouting is safe because
// replicas carry identical weights: every shard returns byte-identical
// predictions for identical SQL, so the only cost of a detour is a possible
// duplicate cache entry.
type ShardedEngine struct {
	shards []*Engine

	// maxEstWaitMicros is the bounded-wait admission target in microseconds
	// (Config.MaxEstWait), fixed at construction. <= 0 disables shedding:
	// PredictSQLGenCtx then dispatches exactly like PredictSQLGen.
	maxEstWaitMicros float64

	// reloadMu serialises rolls of either kind (weight-only and
	// full-bundle): at most one bundle is ever in flight, so at any instant
	// shards carry at most two generations (the outgoing and the incoming
	// one).
	reloadMu sync.Mutex
	// generation is the full-identity generation of the last reload that
	// completed on every shard; during a roll individual shards run ahead
	// of it.
	generation atomic.Int64
	// reloads counts completed rolls of either kind; rejected counts reload
	// attempts refused before any replica was touched (decode or validation
	// failure), the signal operators alert on when a retraining job starts
	// emitting bad bundles.
	reloads  telemetry.Counter
	rejected telemetry.Counter

	// ident is the serving identity snapshot (model name + parameter
	// count) for operator surfaces. It is kept out of the shards'
	// predictor locks — /v1/stats polls must not queue behind multi-
	// millisecond model batches — and republished by ReloadBundle, the
	// only roll kind that changes it.
	ident atomic.Pointer[modelIdent]
}

// modelIdent is the immutable identity snapshot behind ModelInfo.
type modelIdent struct {
	name   string
	params int
}

// NewShardedEngine starts one batcher per predictor (typically built with
// Replicas). cfg.CacheSize and cfg.SubtreeCacheSize are total cache budgets,
// split evenly across shards; cfg.Replicas is ignored — len(preds) decides
// the shard count.
// Callers must Close the engine to release the batcher goroutines.
func NewShardedEngine(preds []*Predictor, cfg Config) *ShardedEngine {
	return newShardedEngineAt(preds, cfg, initialGeneration)
}

// newShardedEngineAt is NewShardedEngine with an explicit starting
// generation, used when a staged shadow/canary engine must be born at the
// generation its bundle will carry on promotion.
func newShardedEngineAt(preds []*Predictor, cfg Config, gen int64) *ShardedEngine {
	if len(preds) == 0 {
		panic("serve: NewShardedEngine needs at least one predictor")
	}
	per := cfg
	if cfg.CacheSize > 0 {
		per.CacheSize = (cfg.CacheSize + len(preds) - 1) / len(preds)
	}
	if cfg.SubtreeCacheSize > 0 {
		per.SubtreeCacheSize = (cfg.SubtreeCacheSize + len(preds) - 1) / len(preds)
	}
	if cfg.TemplateCacheSize > 0 {
		per.TemplateCacheSize = (cfg.TemplateCacheSize + len(preds) - 1) / len(preds)
	}
	se := &ShardedEngine{
		shards:           make([]*Engine, len(preds)),
		maxEstWaitMicros: float64(cfg.MaxEstWait.Microseconds()),
	}
	se.generation.Store(gen)
	se.ident.Store(&modelIdent{name: preds[0].Model.Name(), params: preds[0].Model.ParamCount()})
	for i, p := range preds {
		se.shards[i] = newEngineAt(p, per, gen)
	}
	return se
}

// Shards reports the live shard count (the effective replica count).
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Kernel reports the serving kernel mode: "int8" when the shards quantise,
// "float" otherwise. Every shard is built from one Config, so the mode is
// uniform across the engine and fixed for its lifetime.
func (se *ShardedEngine) Kernel() string { return se.shards[0].Kernel() }

// Close quiesces every shard — no new dispatcher traffic is admitted
// anywhere before the first queue starts draining — then flushes and stops
// each batcher. It waits out any in-flight reload first (holding reloadMu):
// otherwise the roll's deferred endQuiesce would re-admit a closed shard to
// dispatch. Like Engine.Close it is idempotent, and queries arriving
// afterwards fall back to each shard's serialised path.
func (se *ShardedEngine) Close() {
	se.reloadMu.Lock()
	defer se.reloadMu.Unlock()
	for _, sh := range se.shards {
		sh.beginQuiesce()
	}
	for _, sh := range se.shards {
		sh.Close()
	}
}

// shardOf returns the home shard index for a canonical key: FNV-1a inlined
// over the string, since this runs on every request — including cache hits
// — and hash/fnv would cost two allocations per call.
func (se *ShardedEngine) shardOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(len(se.shards)))
}

// pick resolves dispatch for a home shard: home itself, or — when its queue
// is saturated or it is quiescing for a weight swap — the least-loaded
// other shard, so one hot hash bucket cannot stall while other replicas sit
// idle. Detour candidates must carry the same weight generation as home and
// not be quiescing themselves: during a reload roll shards briefly disagree
// on weights, and rerouting across generations would let one canonical key
// bounce between old- and new-weight answers. When no candidate qualifies
// (e.g. the last un-swapped shard quiescing), home keeps its traffic — a
// quiescing shard still answers, just without new dispatcher load.
func (se *ShardedEngine) pick(home *Engine) *Engine {
	if len(se.shards) == 1 || (!home.saturated() && !home.quiescing.Load()) {
		return home
	}
	gen := home.weightGen.Load()
	best := home
	bestQueued := -1
	for _, sh := range se.shards {
		if sh == home || sh.quiescing.Load() || sh.weightGen.Load() != gen {
			continue
		}
		if q := sh.queued(); bestQueued < 0 || q < bestQueued {
			best, bestQueued = sh, q
		}
	}
	return best
}

// PredictSQL canonicalises the query once, dispatches it to a shard and
// returns that shard's prediction. The single-engine guarantee carries
// over: identical SQL yields byte-identical predictions regardless of
// replica count or which shard answered.
func (se *ShardedEngine) PredictSQL(sql string) (Prediction, error) {
	p, _, err := se.PredictSQLGen(sql)
	return p, err
}

// PredictSQLGen is PredictSQL plus the generation that produced the
// answer. Generations are monotone per canonical key for any single
// observer: once a caller has received generation g for a key, every
// request it *starts afterwards* for that key is served from weights (or
// cache entries) of generation >= g — shard generations only advance, the
// dispatcher only detours between same-generation shards, and cache
// segments drop cross-generation deposits. Responses of concurrent
// requests may still complete out of order (a detour queued behind a slow
// peer can finish after the roll), so the guarantee is happens-before
// monotonicity, not global completion-order monotonicity. One narrow
// carve-out: a shard so saturated that its roll-time drain exceeds
// drainTimeout can answer jobs that were already queued behind the swap
// under the *new* generation while earlier shards in the roll order still
// serve the old one — a caller that received such an early new-generation
// answer can then briefly observe the old generation for the same key
// until the roll completes. Bounding the drain is deliberate: waiting for
// a saturated queue to empty could stall the roll indefinitely.
func (se *ShardedEngine) PredictSQLGen(sql string) (Prediction, int64, error) {
	key := CanonicalSQL(sql)
	home := se.shards[se.shardOf(key)]
	sh := se.pick(home)
	if sh == home {
		return home.predictKey(sql, key)
	}
	// Saturation detour: the home cache segment never touches the jobs
	// queue, so a cached answer is still the cheapest path — without this
	// check, hot templates would be recomputed on another shard exactly
	// when the service is overloaded.
	if p, g, ok := home.cachePeek(key); ok {
		return p, g, nil
	}
	p, g, err := sh.predictKey(sql, key)
	if err == nil {
		// Deposit the result where future lookups will hash: an entry
		// stranded only on the detour shard is unreachable once the home
		// queue drains. The home segment drops the deposit if its
		// generation moved between pick and completion.
		home.cachePut(key, p, g)
	}
	return p, g, err
}

// ExplainSQL resolves a query to its logical plan through the home shard's
// template front end: a cached template skips lex and parse, a miss deposits
// the skeleton so explain traffic and prediction traffic warm the same
// per-shard segments. No saturation detour — planning never touches a
// batcher queue, so there is nothing to route around.
func (se *ShardedEngine) ExplainSQL(sql string) (*logicalplan.Node, error) {
	key := CanonicalSQL(sql)
	return se.shards[se.shardOf(key)].PlanOnly(sql)
}

// Snapshot returns the engine's full telemetry state in one pass: every
// shard's counter group, the roll counters and the live model identity.
// Presenters that show aggregates next to the per-shard breakdown must
// derive both from one Snapshot (see telemetry.EngineSnapshot.Totals)
// rather than snapshotting twice, or the two views drift under live
// traffic.
func (se *ShardedEngine) Snapshot() telemetry.EngineSnapshot {
	name, params := se.ModelInfo()
	es := telemetry.EngineSnapshot{
		Generation:      se.generation.Load(),
		Reloads:         se.reloads.Load(),
		RejectedBundles: se.rejected.Load(),
		ModelName:       name,
		Params:          params,
		Kernel:          se.Kernel(),
		Shards:          make([]telemetry.ShardSnapshot, len(se.shards)),
	}
	for i, sh := range se.shards {
		snap := sh.Snapshot()
		snap.Shard = i
		es.Shards[i] = snap
	}
	return es
}
