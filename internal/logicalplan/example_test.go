package logicalplan_test

import (
	"fmt"

	"prestroid/internal/logicalplan"
)

// ExamplePlanSQL shows the EXPLAIN-style plan a query lowers to.
func ExamplePlanSQL() {
	plan, err := logicalplan.PlanSQL("SELECT a FROM t WHERE a > 5 LIMIT 10")
	if err != nil {
		panic(err)
	}
	fmt.Print(plan.Explain())
	fmt.Printf("nodes=%d depth=%d\n", plan.NodeCount(), plan.MaxDepth())
	// Output:
	// - Output
	//   - Project[a]
	//     - Limit[10]
	//       - Filter[a > 5]
	//         - Exchange[source]
	//           - TableScan[t]
	// nodes=6 depth=5
}
