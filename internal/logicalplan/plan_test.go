package logicalplan

import (
	"strings"
	"testing"

	"prestroid/internal/sqlparse"
)

func mustPlan(t *testing.T, src string) *Node {
	t.Helper()
	p, err := PlanSQL(src)
	if err != nil {
		t.Fatalf("PlanSQL(%q): %v", src, err)
	}
	return p
}

func TestPlanSimpleScanFilter(t *testing.T) {
	p := mustPlan(t, "SELECT a FROM t WHERE a > 5")
	// Output → Project → Filter → Exchange → TableScan
	if p.Op != OpOutput {
		t.Fatalf("root = %v", p.Op)
	}
	counts := p.OperatorCounts()
	if counts[OpTableScan] != 1 || counts[OpFilter] != 1 || counts[OpProject] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if got := p.Tables(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("tables = %v", got)
	}
}

func TestPlanJoinShape(t *testing.T) {
	p := mustPlan(t, `SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y`)
	counts := p.OperatorCounts()
	if counts[OpJoin] != 2 {
		t.Fatalf("join count = %d", counts[OpJoin])
	}
	if counts[OpTableScan] != 3 {
		t.Fatalf("scan count = %d", counts[OpTableScan])
	}
	// Left-deep: the top join's left child subtree must contain the first join.
	var join *Node
	p.Walk(func(n *Node) {
		if n.Op == OpJoin && join == nil {
			join = n
		}
	})
	if join.Children[0].OperatorCounts()[OpJoin] != 1 {
		t.Fatal("expected left-deep join tree")
	}
}

func TestPlanAggregateAndExchange(t *testing.T) {
	p := mustPlan(t, "SELECT region, COUNT(*) FROM sales GROUP BY region")
	counts := p.OperatorCounts()
	if counts[OpAggregate] != 1 {
		t.Fatalf("aggregate count = %d", counts[OpAggregate])
	}
	// Exchanges: one above the scan, one above the aggregate.
	if counts[OpExchange] != 2 {
		t.Fatalf("exchange count = %d", counts[OpExchange])
	}
}

func TestPlanTopNVsSortVsLimit(t *testing.T) {
	topn := mustPlan(t, "SELECT a FROM t ORDER BY a LIMIT 5").OperatorCounts()
	if topn[OpTopN] != 1 || topn[OpSort] != 0 || topn[OpLimit] != 0 {
		t.Fatalf("TopN plan = %v", topn)
	}
	sort := mustPlan(t, "SELECT a FROM t ORDER BY a").OperatorCounts()
	if sort[OpSort] != 1 || sort[OpTopN] != 0 {
		t.Fatalf("Sort plan = %v", sort)
	}
	limit := mustPlan(t, "SELECT a FROM t LIMIT 5").OperatorCounts()
	if limit[OpLimit] != 1 || limit[OpTopN] != 0 {
		t.Fatalf("Limit plan = %v", limit)
	}
}

func TestPlanUnion(t *testing.T) {
	p := mustPlan(t, "SELECT a FROM t1 UNION ALL SELECT a FROM t2")
	counts := p.OperatorCounts()
	if counts[OpUnion] != 1 || counts[OpTableScan] != 2 {
		t.Fatalf("union plan = %v", counts)
	}
}

func TestPlanSubqueryNesting(t *testing.T) {
	p := mustPlan(t, `SELECT x FROM (SELECT a AS x FROM t WHERE a > 1) s WHERE x < 10`)
	counts := p.OperatorCounts()
	if counts[OpFilter] != 2 {
		t.Fatalf("filters = %d, want 2 (inner + outer)", counts[OpFilter])
	}
	if counts[OpProject] != 2 {
		t.Fatalf("projects = %d, want 2", counts[OpProject])
	}
}

func TestNodeCountAndDepth(t *testing.T) {
	leaf := NewNode(OpTableScan)
	leaf.Table = "t"
	chain := NewNode(OpFilter, NewNode(OpProject, leaf))
	if chain.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d", chain.NodeCount())
	}
	if chain.MaxDepth() != 2 {
		t.Fatalf("MaxDepth = %d", chain.MaxDepth())
	}
	if NewNode(OpTableScan).MaxDepth() != 0 {
		t.Fatal("single node depth must be 0")
	}
}

func TestPredicatesExtraction(t *testing.T) {
	p := mustPlan(t, "SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y > 3 AND b.z LIKE 'q%'")
	preds := p.Predicates()
	joined := strings.Join(preds, " | ")
	for _, frag := range []string{"a.x = b.x", "a.y > 3", "LIKE 'q%'"} {
		if !strings.Contains(joined, frag) {
			t.Fatalf("predicates %q missing %q", joined, frag)
		}
	}
}

func TestExplainRendering(t *testing.T) {
	p := mustPlan(t, "SELECT a FROM t WHERE a = 1")
	out := p.Explain()
	for _, frag := range []string{"Output", "Project", "Filter[a = 1]", "TableScan[t]"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Explain missing %q:\n%s", frag, out)
		}
	}
	// Indentation should increase down the chain.
	if !strings.Contains(out, "  - ") {
		t.Fatalf("Explain not indented:\n%s", out)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := mustPlan(t, "SELECT a FROM t WHERE a = 1")
	c := p.Clone()
	c.Children[0].Op = OpWindow
	if p.Children[0].Op == OpWindow {
		t.Fatal("Clone must not share nodes")
	}
	if c.NodeCount() != p.NodeCount() {
		t.Fatal("Clone changed node count")
	}
}

func TestOperatorStringNames(t *testing.T) {
	for _, op := range AllOps() {
		if strings.HasPrefix(op.String(), "Op(") {
			t.Fatalf("operator %d missing name", op)
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Fatal("unknown op fallback broken")
	}
}

func TestHavingBecomesFilter(t *testing.T) {
	p := mustPlan(t, "SELECT region, COUNT(*) AS n FROM s GROUP BY region HAVING n > 2")
	if p.OperatorCounts()[OpFilter] != 1 {
		t.Fatalf("having filter missing: %v", p.OperatorCounts())
	}
}

func TestDistinctPlan(t *testing.T) {
	p := mustPlan(t, "SELECT DISTINCT a FROM t")
	if p.OperatorCounts()[OpDistinct] != 1 {
		t.Fatal("distinct node missing")
	}
}

func TestPlanCrossJoinNoCondition(t *testing.T) {
	p := mustPlan(t, "SELECT * FROM a, b")
	var join *Node
	p.Walk(func(n *Node) {
		if n.Op == OpJoin {
			join = n
		}
	})
	if join == nil || join.JoinKind != "CROSS" || join.Pred != nil {
		t.Fatalf("cross join = %#v", join)
	}
}

func TestPlanPredicateTreePreserved(t *testing.T) {
	p := mustPlan(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	var filter *Node
	p.Walk(func(n *Node) {
		if n.Op == OpFilter {
			filter = n
		}
	})
	be, ok := filter.Pred.(*sqlparse.BinaryExpr)
	if !ok || be.Op != "OR" {
		t.Fatalf("top of predicate tree = %#v, want OR (AND binds tighter)", filter.Pred)
	}
}
