// Package logicalplan defines the logical query plan DAG produced from
// parsed SQL, mirroring the structure Presto exposes through
// "EXPLAIN <text>". Plans are the raw material for the paper's O-T-P
// recasting, the plan-diversity study (Fig 2), and the long-tail analysis
// (Fig 8).
package logicalplan

import (
	"fmt"
	"strings"

	"prestroid/internal/sqlparse"
)

// Op enumerates logical plan operators.
type Op int

// Logical operators. The set follows Presto's text plans: scans and filters
// at the leaves, exchanges introduced between distributed stages.
const (
	OpOutput Op = iota
	OpTableScan
	OpFilter
	OpProject
	OpJoin
	OpAggregate
	OpSort
	OpTopN
	OpLimit
	OpDistinct
	OpUnion
	OpExchange
	OpWindow
)

var opNames = map[Op]string{
	OpOutput:    "Output",
	OpTableScan: "TableScan",
	OpFilter:    "Filter",
	OpProject:   "Project",
	OpJoin:      "Join",
	OpAggregate: "Aggregate",
	OpSort:      "Sort",
	OpTopN:      "TopN",
	OpLimit:     "Limit",
	OpDistinct:  "Distinct",
	OpUnion:     "Union",
	OpExchange:  "Exchange",
	OpWindow:    "Window",
}

// String returns the operator's Presto-style name.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// AllOps lists every operator; the O-T-P encoder 1-hot encodes over this set.
func AllOps() []Op {
	return []Op{
		OpOutput, OpTableScan, OpFilter, OpProject, OpJoin, OpAggregate,
		OpSort, OpTopN, OpLimit, OpDistinct, OpUnion, OpExchange, OpWindow,
	}
}

// Node is one operator in the logical plan DAG. Children are the operator's
// inputs (0 for scans, 1 for unary operators, 2+ for joins and unions).
type Node struct {
	Op       Op
	Table    string        // OpTableScan: scanned table name
	Pred     sqlparse.Expr // OpFilter: filter predicate; OpJoin: join condition
	JoinKind string        // OpJoin: INNER, LEFT, RIGHT, FULL, CROSS
	Detail   string        // free-form annotation (projection list, sort keys, …)
	Children []*Node
}

// NewNode returns a node with the given operator and children.
func NewNode(op Op, children ...*Node) *Node {
	return &Node{Op: op, Children: children}
}

// NodeCount returns the number of nodes in the plan rooted at n.
func (n *Node) NodeCount() int {
	if n == nil {
		return 0
	}
	count := 1
	for _, c := range n.Children {
		count += c.NodeCount()
	}
	return count
}

// MaxDepth returns the largest root-to-leaf distance (root alone = 0), the
// definition used in the paper's Fig 2.
func (n *Node) MaxDepth() int {
	if n == nil || len(n.Children) == 0 {
		return 0
	}
	best := 0
	for _, c := range n.Children {
		if d := c.MaxDepth(); d > best {
			best = d
		}
	}
	return best + 1
}

// Tables returns the distinct table names scanned anywhere in the plan.
func (n *Node) Tables() []string {
	seen := map[string]bool{}
	var out []string
	n.Walk(func(x *Node) {
		if x.Op == OpTableScan && !seen[x.Table] {
			seen[x.Table] = true
			out = append(out, x.Table)
		}
	})
	return out
}

// Predicates returns every filter and join predicate in the plan, rendered
// to text in pre-order. These strings feed the Word2Vec training corpus.
func (n *Node) Predicates() []string {
	var out []string
	n.Walk(func(x *Node) {
		if x.Pred != nil {
			out = append(out, sqlparse.ExprString(x.Pred))
		}
	})
	return out
}

// Walk visits every node in pre-order.
func (n *Node) Walk(f func(*Node)) {
	if n == nil {
		return
	}
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// OperatorCounts tallies how many times each operator appears; the SVR
// baseline's feature vector is built from these counts.
func (n *Node) OperatorCounts() map[Op]int {
	counts := map[Op]int{}
	n.Walk(func(x *Node) { counts[x.Op]++ })
	return counts
}

// Explain renders the plan as indented text in the style of
// "EXPLAIN <text>" output.
func (n *Node) Explain() string {
	var b strings.Builder
	n.explain(&b, 0)
	return b.String()
}

func (n *Node) explain(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString("- ")
	b.WriteString(n.Op.String())
	switch {
	case n.Op == OpTableScan:
		fmt.Fprintf(b, "[%s]", n.Table)
	case n.Op == OpJoin:
		fmt.Fprintf(b, "[%s]", n.JoinKind)
		if n.Pred != nil {
			fmt.Fprintf(b, " ON %s", sqlparse.ExprString(n.Pred))
		}
	case n.Pred != nil:
		fmt.Fprintf(b, "[%s]", sqlparse.ExprString(n.Pred))
	case n.Detail != "":
		fmt.Fprintf(b, "[%s]", n.Detail)
	}
	b.WriteString("\n")
	for _, c := range n.Children {
		c.explain(b, depth+1)
	}
}

// Clone returns a deep copy of the plan (expressions are shared; they are
// immutable after parsing).
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{
		Op:       n.Op,
		Table:    n.Table,
		Pred:     n.Pred,
		JoinKind: n.JoinKind,
		Detail:   n.Detail,
	}
	for _, ch := range n.Children {
		c.Children = append(c.Children, ch.Clone())
	}
	return c
}
