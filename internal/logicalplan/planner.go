package logicalplan

import (
	"fmt"
	"strings"

	"prestroid/internal/sqlparse"
)

// Plan lowers a parsed SELECT statement to a logical plan rooted at an
// Output node. The lowering follows the textbook pipeline
// scan → filter → join → aggregate → having → distinct → sort/topN → limit →
// project, with Exchange nodes inserted above scans and joins the way a
// distributed engine such as Presto stages its fragments.
func Plan(stmt *sqlparse.SelectStmt) (*Node, error) {
	body, err := planQuery(stmt)
	if err != nil {
		return nil, err
	}
	return NewNode(OpOutput, body), nil
}

func planQuery(stmt *sqlparse.SelectStmt) (*Node, error) {
	node, err := planFrom(stmt.From)
	if err != nil {
		return nil, err
	}
	if stmt.Where != nil {
		node = &Node{Op: OpFilter, Pred: stmt.Where, Children: []*Node{node}}
	}
	if len(stmt.GroupBy) > 0 || hasAggregate(stmt) {
		node = &Node{Op: OpAggregate, Detail: groupDetail(stmt), Children: []*Node{node}}
		// Distributed engines add an exchange before the final aggregation.
		node = &Node{Op: OpExchange, Detail: "repartition", Children: []*Node{node}}
	}
	if stmt.Having != nil {
		node = &Node{Op: OpFilter, Pred: stmt.Having, Children: []*Node{node}}
	}
	if stmt.Distinct {
		node = &Node{Op: OpDistinct, Children: []*Node{node}}
	}
	switch {
	case len(stmt.OrderBy) > 0 && stmt.Limit >= 0:
		node = &Node{Op: OpTopN, Detail: orderDetail(stmt), Children: []*Node{node}}
	case len(stmt.OrderBy) > 0:
		node = &Node{Op: OpSort, Detail: orderDetail(stmt), Children: []*Node{node}}
	case stmt.Limit >= 0:
		node = &Node{Op: OpLimit, Detail: fmt.Sprintf("%d", stmt.Limit), Children: []*Node{node}}
	}
	node = &Node{Op: OpProject, Detail: projectDetail(stmt), Children: []*Node{node}}

	if stmt.Union != nil {
		rest, err := planQuery(stmt.Union)
		if err != nil {
			return nil, err
		}
		node = &Node{Op: OpUnion, Children: []*Node{node, rest}}
	}
	return node, nil
}

func planFrom(te sqlparse.TableExpr) (*Node, error) {
	switch v := te.(type) {
	case *sqlparse.TableRef:
		scan := &Node{Op: OpTableScan, Table: v.Name}
		return &Node{Op: OpExchange, Detail: "source", Children: []*Node{scan}}, nil
	case *sqlparse.SubqueryRef:
		return planQuery(v.Query)
	case *sqlparse.JoinExpr:
		left, err := planFrom(v.Left)
		if err != nil {
			return nil, err
		}
		right, err := planFrom(v.Right)
		if err != nil {
			return nil, err
		}
		return &Node{
			Op:       OpJoin,
			JoinKind: v.Kind,
			Pred:     v.On,
			Children: []*Node{left, right},
		}, nil
	default:
		return nil, fmt.Errorf("logicalplan: unsupported table expression %T", te)
	}
}

func hasAggregate(stmt *sqlparse.SelectStmt) bool {
	for _, c := range stmt.Columns {
		if _, ok := c.Expr.(*sqlparse.FuncExpr); ok {
			return true
		}
	}
	return false
}

func groupDetail(stmt *sqlparse.SelectStmt) string {
	if len(stmt.GroupBy) == 0 {
		return "global"
	}
	keys := make([]string, len(stmt.GroupBy))
	for i, c := range stmt.GroupBy {
		keys[i] = c.String()
	}
	return "by " + strings.Join(keys, ", ")
}

func orderDetail(stmt *sqlparse.SelectStmt) string {
	keys := make([]string, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		dir := "asc"
		if o.Desc {
			dir = "desc"
		}
		keys[i] = o.Col.String() + " " + dir
	}
	s := strings.Join(keys, ", ")
	if stmt.Limit >= 0 {
		s += fmt.Sprintf(" limit %d", stmt.Limit)
	}
	return s
}

func projectDetail(stmt *sqlparse.SelectStmt) string {
	parts := make([]string, 0, len(stmt.Columns))
	for _, c := range stmt.Columns {
		if c.Star {
			parts = append(parts, "*")
			continue
		}
		parts = append(parts, sqlparse.ExprString(c.Expr))
	}
	return strings.Join(parts, ", ")
}

// PlanSQL parses src and lowers it to a logical plan in one step.
func PlanSQL(src string) (*Node, error) {
	stmt, err := sqlparse.Parse(src)
	if err != nil {
		return nil, err
	}
	return Plan(stmt)
}
