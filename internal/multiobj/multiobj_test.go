package multiobj

import (
	"testing"

	"prestroid/internal/dataset"
	"prestroid/internal/models"
	"prestroid/internal/train"
	"prestroid/internal/workload"
)

func fixture(t *testing.T) (dataset.Split, *models.Pipeline) {
	t.Helper()
	cfg := workload.DefaultGrabConfig()
	cfg.Queries = 200
	traces := workload.NewGrabGenerator(cfg).Generate()
	split := dataset.SplitRandom(traces, 1)
	pcfg := models.DefaultPipelineConfig(8)
	pcfg.MinCount = 2
	return split, models.BuildPipeline(split.Train, pcfg)
}

func smallCfg() models.PrestroidConfig {
	cfg := models.DefaultPrestroidConfig(15, 5)
	cfg.ConvWidths = []int{12, 12}
	cfg.DenseWidths = []int{12}
	cfg.LR = 5e-3
	return cfg
}

func TestObjectiveNames(t *testing.T) {
	if ObjCPU.String() != "cpu_minutes" || ObjMemory.String() != "peak_mem_gb" || ObjInput.String() != "input_gb" {
		t.Fatal("objective names wrong")
	}
}

func TestMultiTrainAndPredict(t *testing.T) {
	split, pipe := fixture(t)
	mp := New(smallCfg(), pipe)
	tcfg := train.DefaultConfig()
	tcfg.MaxEpochs = 6
	tcfg.Patience = 3
	res := mp.Train(split, tcfg)
	for o := Objective(0); o < numObjectives; o++ {
		r := res.PerObjective[o]
		if r.TestMSE <= 0 {
			t.Fatalf("%s test MSE = %v", o, r.TestMSE)
		}
		first := r.TrainLosses[0]
		last := r.TrainLosses[len(r.TrainLosses)-1]
		if last >= first {
			t.Fatalf("%s loss did not improve: %v -> %v", o, first, last)
		}
	}

	forecasts := mp.Predict(split.Test[:5])
	if len(forecasts) != 5 {
		t.Fatalf("forecasts = %d", len(forecasts))
	}
	for i, f := range forecasts {
		if f.CPUMinutes <= 0 || f.PeakMemGB <= 0 || f.InputGB <= 0 {
			t.Fatalf("forecast %d has non-positive fields: %+v", i, f)
		}
	}
}

func TestHeadsAreIndependent(t *testing.T) {
	split, pipe := fixture(t)
	mp := New(smallCfg(), pipe)
	if mp.Head(ObjCPU) == mp.Head(ObjMemory) {
		t.Fatal("heads must be distinct models")
	}
	tcfg := train.DefaultConfig()
	tcfg.MaxEpochs = 2
	tcfg.Patience = 2
	mp.Train(split, tcfg)
	// Normalisers differ because objectives have different label scales.
	if mp.Norm(ObjCPU) == mp.Norm(ObjMemory) {
		t.Fatal("per-objective normalisers should differ")
	}
}

func TestForecastsTrackGroundTruthOrdering(t *testing.T) {
	split, pipe := fixture(t)
	mp := New(smallCfg(), pipe)
	tcfg := train.DefaultConfig()
	tcfg.MaxEpochs = 10
	tcfg.Patience = 5
	mp.Train(split, tcfg)

	// Correlation check: mean forecast over the cheapest third of test
	// queries should be below the mean over the priciest third (weak but
	// scale-free signal that the CPU head learned something).
	test := split.Test
	if len(test) < 9 {
		t.Skip("test split too small")
	}
	fc := mp.Predict(test)
	type pair struct{ actual, pred float64 }
	pairs := make([]pair, len(test))
	for i := range test {
		pairs[i] = pair{test[i].CPUMinutes(), fc[i].CPUMinutes}
	}
	// Partition by actual cost.
	lo, hi := 0.0, 0.0
	nlo, nhi := 0, 0
	for _, p := range pairs {
		if p.actual < 5 {
			lo += p.pred
			nlo++
		} else if p.actual > 20 {
			hi += p.pred
			nhi++
		}
	}
	if nlo == 0 || nhi == 0 {
		t.Skip("degenerate split")
	}
	if lo/float64(nlo) >= hi/float64(nhi) {
		t.Fatalf("cheap queries predicted at %.2f, expensive at %.2f — no signal",
			lo/float64(nlo), hi/float64(nhi))
	}
}
