// Package multiobj implements multi-objective resource forecasting — the
// extension the paper explicitly defers ("we focus on single objective
// learning in which the model has to predict how much total CPU time a
// query consumes", §4). A MultiPredictor trains one Prestroid head per
// resource dimension of the Presto profile (CPU minutes, peak memory, input
// bytes) over the shared feature pipeline, so a platform can provision all
// three budgets from one parse.
package multiobj

import (
	"fmt"

	"prestroid/internal/dataset"
	"prestroid/internal/models"
	"prestroid/internal/tensor"
	"prestroid/internal/train"
	"prestroid/internal/workload"
)

// Objective identifies one resource dimension.
type Objective int

// The three resource objectives of the Presto profile (App A).
const (
	ObjCPU Objective = iota
	ObjMemory
	ObjInput
	numObjectives
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case ObjCPU:
		return "cpu_minutes"
	case ObjMemory:
		return "peak_mem_gb"
	case ObjInput:
		return "input_gb"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// labelFunc extracts the objective's ground truth from a trace.
func (o Objective) labelFunc() func(*workload.Trace) float64 {
	switch o {
	case ObjMemory:
		return func(t *workload.Trace) float64 { return t.Profile.PeakMemGB }
	case ObjInput:
		return func(t *workload.Trace) float64 { return t.Profile.InputGB }
	default:
		return func(t *workload.Trace) float64 { return t.Profile.CPUMinutes }
	}
}

// Forecast is one query's predicted resource profile.
type Forecast struct {
	CPUMinutes float64
	PeakMemGB  float64
	InputGB    float64
}

// MultiPredictor holds one trained head per objective.
type MultiPredictor struct {
	heads [numObjectives]models.Model
	norms [numObjectives]workload.Normalizer
}

// New builds the three heads over a shared pipeline with the given base
// configuration (seeds are varied per head).
func New(cfg models.PrestroidConfig, pipe *models.Pipeline) *MultiPredictor {
	mp := &MultiPredictor{}
	for o := Objective(0); o < numObjectives; o++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(o)*101
		mp.heads[o] = models.NewPrestroid(c, pipe)
	}
	return mp
}

// Result reports per-objective training outcomes. MSE units are the square
// of each objective's natural unit.
type Result struct {
	PerObjective [numObjectives]train.Result
}

// Train fits every head with early stopping, each against its own
// normalised label.
func (mp *MultiPredictor) Train(split dataset.Split, cfg train.Config) Result {
	var res Result
	for o := Objective(0); o < numObjectives; o++ {
		label := o.labelFunc()
		mp.norms[o] = workload.FitNormalizerBy(split.Train, label)
		res.PerObjective[o] = runWithLabel(mp.heads[o], split, mp.norms[o], label, cfg)
	}
	return res
}

// runWithLabel is train.Run generalised to an arbitrary objective.
func runWithLabel(m models.Model, split dataset.Split, norm workload.Normalizer, label func(*workload.Trace) float64, cfg train.Config) train.Result {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 30
	}
	if cfg.Patience <= 0 {
		cfg.Patience = 5
	}
	m.Prepare(split.Train)
	m.Prepare(split.Val)
	m.Prepare(split.Test)

	rng := tensor.NewRNG(cfg.Seed)
	res := train.Result{BestValMSE: 1e308}
	bad := 0
	for epoch := 1; epoch <= cfg.MaxEpochs; epoch++ {
		totalLoss, n := 0.0, 0
		for _, batch := range dataset.Batches(split.Train, cfg.BatchSize, rng) {
			labels := dataset.LabelsBy(batch, norm, label)
			totalLoss += m.TrainBatch(batch, labels)
			n++
		}
		res.EpochsRun = epoch
		res.TrainLosses = append(res.TrainLosses, totalLoss/float64(n))
		valMSE := models.MSEBy(m, split.Val, norm, label)
		if valMSE < res.BestValMSE {
			res.BestValMSE = valMSE
			res.BestEpoch = epoch
			res.TestMSE = models.MSEBy(m, split.Test, norm, label)
			bad = 0
		} else {
			bad++
			if bad >= cfg.Patience {
				break
			}
		}
	}
	return res
}

// Predict forecasts all three resource dimensions for the traces.
func (mp *MultiPredictor) Predict(traces []*workload.Trace) []Forecast {
	out := make([]Forecast, len(traces))
	for o := Objective(0); o < numObjectives; o++ {
		mp.heads[o].Prepare(traces)
		pred := mp.heads[o].Predict(traces)
		for i := range traces {
			v := mp.norms[o].Denormalize(pred.Data[i])
			switch o {
			case ObjCPU:
				out[i].CPUMinutes = v
			case ObjMemory:
				out[i].PeakMemGB = v
			case ObjInput:
				out[i].InputGB = v
			}
		}
	}
	return out
}

// Head exposes one objective's trained model (e.g. for persistence).
func (mp *MultiPredictor) Head(o Objective) models.Model { return mp.heads[o] }

// Norm exposes one objective's normaliser.
func (mp *MultiPredictor) Norm(o Objective) workload.Normalizer { return mp.norms[o] }
