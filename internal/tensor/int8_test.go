package tensor

import (
	"math"
	"runtime"
	"sync"
	"testing"
)

// refInt8MatMul computes the dequantised product the slow, obvious way so
// the kernel has an independent oracle. q holds the bias-shifted bytes
// QuantizeRowsInto produces (qa+63), which the oracle unbiases per element.
func refInt8MatMul(q []int8, scales []float64, w *Int8Matrix, bias []float64, relu bool, m int) *Tensor {
	out := New(m, w.Out)
	for i := 0; i < m; i++ {
		for j := 0; j < w.Out; j++ {
			acc := int32(0)
			for p := 0; p < w.In; p++ {
				acc += (int32(q[i*w.In+p]) - 63) * int32(w.Q[j*w.In+p])
			}
			// Same dequantisation order as the kernel (fused scale factor),
			// so exact-compare tests can demand bit identity.
			v := float64(acc) * (scales[i] * w.Scale[j])
			if bias != nil {
				v += bias[j]
			}
			if relu && !(v > 0) {
				v = 0
			}
			out.Data[i*w.Out+j] = v
		}
	}
	return out
}

func randMat(rng *RNG, m, n, scale float64) *Tensor {
	t := New(int(m), int(n))
	for i := range t.Data {
		t.Data[i] = (rng.Float64() - 0.5) * 2 * scale
	}
	return t
}

func TestQuantizeColumnsRoundTrip(t *testing.T) {
	rng := NewRNG(7)
	w := randMat(rng, 13, 9, 3)
	// One all-zero column must survive with scale 0.
	for i := 0; i < 13; i++ {
		w.Data[i*9+4] = 0
	}
	q := QuantizeColumns(w)
	if q.In != 13 || q.Out != 9 {
		t.Fatalf("packed dims %dx%d, want 13x9", q.In, q.Out)
	}
	if q.Scale[4] != 0 {
		t.Fatalf("zero column got scale %v", q.Scale[4])
	}
	for j := 0; j < 9; j++ {
		amax := 0.0
		for i := 0; i < 13; i++ {
			if a := math.Abs(w.Data[i*9+j]); a > amax {
				amax = a
			}
		}
		for i := 0; i < 13; i++ {
			got := float64(q.Q[j*13+i]) * q.Scale[j]
			want := w.Data[i*9+j]
			// Symmetric int8: round-trip error is at most half a step.
			if e := math.Abs(got - want); e > amax/254+1e-12 {
				t.Fatalf("col %d row %d: round-trip %v vs %v (err %v, amax %v)", j, i, got, want, e, amax)
			}
			if e := math.Abs(got - want); e > q.MaxErr+1e-12 {
				t.Fatalf("MaxErr %v underreports observed error %v", q.MaxErr, e)
			}
		}
	}
}

func TestQuantizeRowsInto(t *testing.T) {
	rng := NewRNG(11)
	x := randMat(rng, 6, 17, 5)
	for p := 0; p < 17; p++ {
		x.Data[3*17+p] = 0 // one all-zero activation row
	}
	q := make([]int8, 6*17)
	scales := make([]float64, 6)
	meta := make([]int32, 12)
	maxErr := QuantizeRowsInto(q, scales, meta, x)
	if scales[3] != 0 {
		t.Fatalf("zero row got scale %v", scales[3])
	}
	worst := 0.0
	for i := 0; i < 6; i++ {
		var rs, nnz int32
		for p := 0; p < 17; p++ {
			qa := int32(q[i*17+p]) - 63
			rs += qa
			if qa != 0 {
				nnz++
			}
			got := float64(qa) * scales[i]
			if e := math.Abs(got - x.Data[i*17+p]); e > worst {
				worst = e
			}
		}
		if meta[2*i] != 128*rs || meta[2*i+1] != nnz {
			t.Fatalf("row %d meta (%d,%d), recomputed (%d,%d)", i, meta[2*i], meta[2*i+1], 128*rs, nnz)
		}
	}
	if math.Abs(worst-maxErr) > 1e-12 {
		t.Fatalf("reported maxErr %v, recomputed %v", maxErr, worst)
	}
}

func TestDotInt8MatchesScalar(t *testing.T) {
	rng := NewRNG(3)
	for _, n := range []int{0, 1, 3, 4, 7, 64, 129} {
		a := make([]int8, n)
		b := make([]int8, n)
		want := int32(0)
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
			b[i] = int8(rng.Intn(255) - 127)
			want += int32(a[i]) * int32(b[i])
		}
		if got := DotInt8(a, b); got != want {
			t.Fatalf("n=%d: DotInt8 = %d, want %d", n, got, want)
		}
	}
}

func TestInt8MatMulIntoMatchesReference(t *testing.T) {
	rng := NewRNG(19)
	for _, dims := range [][3]int{{1, 8, 5}, {4, 32, 16}, {9, 33, 7}} {
		m, k, n := dims[0], dims[1], dims[2]
		w := QuantizeColumns(randMat(rng, float64(k), float64(n), 2))
		x := randMat(rng, float64(m), float64(k), 4)
		q := make([]int8, m*k)
		scales := make([]float64, m)
		meta := make([]int32, 2*m)
		QuantizeRowsInto(q, scales, meta, x)
		bias := make([]float64, n)
		for j := range bias {
			bias[j] = (rng.Float64() - 0.5) * 0.2
		}
		for _, relu := range []bool{false, true} {
			want := refInt8MatMul(q, scales, w, bias, relu, m)
			got := New(m, n)
			Int8MatMulInto(got, q, scales, meta, w, bias, relu)
			for i := range got.Data {
				if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
					t.Fatalf("m=%d k=%d n=%d relu=%v: elem %d = %v, want %v", m, k, n, relu, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestInt8MatMulSparseRowsMatchReference drives the sparse row kernel —
// wide inputs, rows that are almost entirely zero — interleaved with dense
// and all-zero rows so every pairing branch in int8Rows is crossed, and
// checks bit-identity with the dense reference. The sparse reduction
// re-derives its bias correction from the touched words, so any drift from
// the Corr form would show up as an exact-compare failure here.
func TestInt8MatMulSparseRowsMatchReference(t *testing.T) {
	rng := NewRNG(41)
	m, k, n := 11, 232, 30
	w := QuantizeColumns(randMat(rng, float64(k), float64(n), 2))
	x := New(m, k)
	for i := 0; i < m; i++ {
		switch i % 4 {
		case 0: // sparse: a handful of nonzeros, like an O-T-P encoding row
			for c := 0; c < 1+rng.Intn(3); c++ {
				x.Data[i*k+rng.Intn(k)] = (rng.Float64() - 0.5) * 4
			}
		case 1: // dense
			for p := 0; p < k; p++ {
				x.Data[i*k+p] = (rng.Float64() - 0.5) * 4
			}
		case 2: // all-zero
		default: // borderline: just past the sparse cut
			for c := 0; c < k/int8SparseCut+2; c++ {
				x.Data[i*k+rng.Intn(k)] = (rng.Float64() - 0.5) * 4
			}
		}
	}
	q := make([]int8, m*k)
	scales := make([]float64, m)
	meta := make([]int32, 2*m)
	QuantizeRowsInto(q, scales, meta, x)
	sawSparse, sawDense := false, false
	for i := 0; i < m; i++ {
		nnz := 0
		for p := 0; p < k; p++ {
			if q[i*k+p] != 63 {
				nnz++
			}
		}
		if scales[i] == 0 {
			continue
		}
		if sparseRow(nnz, k) {
			sawSparse = true
		} else {
			sawDense = true
		}
	}
	if !sawSparse || !sawDense {
		t.Fatalf("fixture degenerate: sparse=%v dense=%v rows", sawSparse, sawDense)
	}
	bias := make([]float64, n)
	for j := range bias {
		bias[j] = (rng.Float64() - 0.5) * 0.2
	}
	for _, relu := range []bool{false, true} {
		want := refInt8MatMul(q, scales, w, bias, relu, m)
		got := New(m, n)
		Int8MatMulInto(got, q, scales, meta, w, bias, relu)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("relu=%v: elem %d = %v, want %v (sparse/dense paths disagree)", relu, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestInt8MatMulApproximatesFloat pins the end-to-end quantisation error of
// one dequantised GEMM against the float product: per-element error is
// bounded by the sum of activation and weight step sizes times the reduction
// depth, and in practice far below it.
func TestInt8MatMulApproximatesFloat(t *testing.T) {
	rng := NewRNG(23)
	m, k, n := 8, 64, 32
	wf := randMat(rng, float64(k), float64(n), 1)
	x := randMat(rng, float64(m), float64(k), 1)
	w := QuantizeColumns(wf)
	q := make([]int8, m*k)
	scales := make([]float64, m)
	meta := make([]int32, 2*m)
	QuantizeRowsInto(q, scales, meta, x)
	exact := MatMul(x, wf)
	got := New(m, n)
	Int8MatMulInto(got, q, scales, meta, w, nil, false)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			e := math.Abs(got.Data[i*n+j] - exact.Data[i*n+j])
			// Loose analytic bound: k terms, each off by at most
			// (|x|max/254)·|w| + (|w|max/254)·|x| + cross term.
			bound := float64(k) * (scales[i] + w.Scale[j]) * 127 * (scales[i] + w.Scale[j])
			if e > bound {
				t.Fatalf("(%d,%d): int8 error %v exceeds bound %v", i, j, e, bound)
			}
			if e > 0.5 {
				t.Fatalf("(%d,%d): int8 error %v implausibly large for unit inputs", i, j, e)
			}
		}
	}
}

// TestInt8MatMulParallelDeterministic checks that fan-out across the worker
// budget cannot change results: the sharded and serial paths write
// byte-identical outputs.
func TestInt8MatMulParallelDeterministic(t *testing.T) {
	// The kernels ask for GOMAXPROCS workers; force >1 so the sharded path
	// actually engages on single-core CI hosts.
	old := runtime.GOMAXPROCS(4)
	defer func() {
		runtime.GOMAXPROCS(old)
		SetMatMulWorkerBudget(old)
	}()
	SetMatMulWorkerBudget(4)
	rng := NewRNG(29)
	// Past the flop threshold so the sharded path engages.
	m, k, n := 128, 64, 64
	if m*k*n < ParallelFlopThreshold {
		t.Fatalf("test dims below parallel threshold")
	}
	wf := randMat(rng, float64(k), float64(n), 1)
	x := randMat(rng, float64(m), float64(k), 1)
	w := QuantizeColumns(wf)
	q := make([]int8, m*k)
	scales := make([]float64, m)
	meta := make([]int32, 2*m)
	QuantizeRowsInto(q, scales, meta, x)
	bias := make([]float64, n)
	par := New(m, n)
	Int8MatMulInto(par, q, scales, meta, w, bias, true)
	serial := New(m, n)
	int8Rows(serial, q, scales, meta, w, bias, true, 0, m)
	for i := range par.Data {
		if par.Data[i] != serial.Data[i] {
			t.Fatalf("parallel and serial kernels disagree at %d: %v vs %v", i, par.Data[i], serial.Data[i])
		}
	}
}

// TestMatMulWorkerBudgetCeiling pins the oversubscription fix: many
// concurrent large kernels may between them never have more helper
// goroutines in flight than the budget grants, where each call previously
// spawned GOMAXPROCS goroutines of its own.
func TestMatMulWorkerBudgetCeiling(t *testing.T) {
	// Kernels ask for GOMAXPROCS workers per call; raise it past the budget
	// so the grant — not the ask — is what bounds the fan-out, even on
	// single-core CI hosts.
	old := runtime.GOMAXPROCS(8)
	defer func() {
		runtime.GOMAXPROCS(old)
		SetMatMulWorkerBudget(old)
	}()
	const budget = 3
	SetMatMulWorkerBudget(budget)
	ResetHelperPeak()

	rng := NewRNG(31)
	m, k, n := 256, 64, 64 // m*k*n = 2^20, past the threshold
	a := randMat(rng, float64(m), float64(k), 1)
	b := randMat(rng, float64(k), float64(n), 1)
	w := QuantizeColumns(b)
	q := make([]int8, m*k)
	scales := make([]float64, m)
	meta := make([]int32, 2*m)
	QuantizeRowsInto(q, scales, meta, a)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := New(m, n)
			for iter := 0; iter < 6; iter++ {
				if g%2 == 0 {
					MatMulInto(out, a, b)
				} else {
					Int8MatMulInto(out, q, scales, meta, w, nil, false)
				}
			}
		}(g)
	}
	wg.Wait()
	if peak := HelperPeak(); peak > budget-1 {
		t.Fatalf("observed %d concurrent helper goroutines, budget allows %d", peak, budget-1)
	}
	// The budget must actually be exercised, or the ceiling is vacuous.
	if peak := HelperPeak(); peak == 0 {
		t.Fatalf("no helper goroutines observed; kernels stayed serial and the ceiling test is vacuous")
	}
}

func TestArenaGetI8(t *testing.T) {
	a := NewArena(0)
	s1 := a.GetI8(64)
	if len(s1) != 64 {
		t.Fatalf("GetI8(64) returned len %d", len(s1))
	}
	for i := range s1 {
		s1[i] = int8(i)
	}
	a.Reset() // records overflow, regrows
	s2 := a.GetI8(64)
	s3 := a.GetI8(32)
	if len(s2) != 64 || len(s3) != 32 {
		t.Fatalf("post-regrow GetI8 lengths %d, %d", len(s2), len(s3))
	}
	// After warm-up, a same-sized cycle must not allocate.
	a.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		a.GetI8(64)
		a.GetI8(32)
		a.Reset()
	})
	if allocs != 0 {
		t.Fatalf("warmed GetI8 cycle allocates %v/op, want 0", allocs)
	}
}
