package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The matrix kernels share one process-wide budget of helper goroutines.
// Without it, every large MatMulInto spawned GOMAXPROCS workers regardless
// of how many kernels were already in flight — N concurrent shard flushes
// meant N×GOMAXPROCS runnable goroutines fighting over the same cores, on
// top of the forward-worker semaphore the replicas already share. The
// budget caps the *total* helper fan-out: each call computes one shard on
// the calling goroutine and claims extra workers from the pool without
// blocking, so a lone kernel on an idle host still gets every core while
// concurrent kernels degrade gracefully toward serial instead of
// oversubscribing.
//
// The pool holds budget-1 tokens: the calling goroutine is the implicit
// first worker, so with budget B a single kernel runs on at most B
// goroutines, and any number of concurrent kernels add at most B-1 helper
// goroutines between them.
var matmulWorkers atomic.Pointer[workerPool]

type workerPool struct {
	tokens chan struct{}
}

func init() { SetMatMulWorkerBudget(runtime.GOMAXPROCS(0)) }

// SetMatMulWorkerBudget resets the kernel worker budget to n total workers
// (the caller plus n-1 pooled helpers). Values below 1 are clamped to 1,
// which makes every kernel serial. Helpers already running against the old
// budget finish normally; the new budget applies to subsequent calls.
func SetMatMulWorkerBudget(n int) {
	if n < 1 {
		n = 1
	}
	p := &workerPool{tokens: make(chan struct{}, n-1)}
	for i := 0; i < n-1; i++ {
		p.tokens <- struct{}{}
	}
	matmulWorkers.Store(p)
}

// acquire claims up to want helper tokens without blocking, returning the
// pool they must be released to and how many were granted.
func acquireWorkers(want int) (*workerPool, int) {
	p := matmulWorkers.Load()
	got := 0
	for got < want {
		select {
		case <-p.tokens:
			got++
		default:
			return p, got
		}
	}
	return p, got
}

func (p *workerPool) release(n int) {
	for i := 0; i < n; i++ {
		p.tokens <- struct{}{}
	}
}

// helperActive / helperPeak instrument the helper fan-out so a test can pin
// the ceiling under concurrent kernels. They are only touched on the
// goroutine-spawning path, never in serial kernels.
var (
	helperActive atomic.Int64
	helperPeak   atomic.Int64
)

func noteHelperStart() {
	a := helperActive.Add(1)
	for {
		p := helperPeak.Load()
		if a <= p || helperPeak.CompareAndSwap(p, a) {
			return
		}
	}
}

func noteHelperDone() { helperActive.Add(-1) }

// shardRows splits the row range [0, m) across the calling goroutine plus
// however many helpers the worker budget grants, invoking fn once per
// half-open shard. fn must be safe to run concurrently on disjoint ranges;
// the partitioning never changes which goroutine writes which output row,
// so kernels stay deterministic regardless of how many tokens were free.
// The caller always computes the first shard inline — progress never
// depends on token availability.
func shardRows(m, want int, fn func(lo, hi int)) {
	if want > m {
		want = m
	}
	if want <= 1 {
		fn(0, m)
		return
	}
	pool, extra := acquireWorkers(want - 1)
	if extra == 0 {
		fn(0, m)
		return
	}
	workers := extra + 1
	per := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for start := per; start < m; start += per {
		end := start + per
		if end > m {
			end = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			noteHelperStart()
			fn(lo, hi)
			noteHelperDone()
		}(start, end)
	}
	first := per
	if first > m {
		first = m
	}
	fn(0, first)
	wg.Wait()
	pool.release(extra)
}
