package tensor

import (
	"fmt"
	"runtime"
)

// parallelFlopThreshold is the m*k*n product above which MatMulInto shards
// rows across goroutines. Small products stay serial: goroutine dispatch
// costs more than the multiply.
const parallelFlopThreshold = 1 << 18

// MatMul returns a × b for 2-D tensors of shapes (m,k) and (k,n).
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.Shape[0], b.Shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a × b, reusing out's buffer. out must have shape
// (a.rows, b.cols). The inner loop is ordered i-k-j for cache locality;
// large products are sharded row-wise across goroutines (each output row is
// written by exactly one worker, so no synchronisation is needed).
func MatMulInto(out, a, b *Tensor) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul wants 2-d operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %v x %v", a.Shape, b.Shape))
	}
	if out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto out shape %v, want [%d %d]", out.Shape, m, n))
	}
	if m*k*n < parallelFlopThreshold {
		matMulRows(out, a, b, 0, m)
		return
	}
	// Fan out through the shared worker budget (see workers.go): the caller
	// computes one shard inline and helpers are claimed without blocking, so
	// concurrent kernels divide the budget instead of each spawning
	// GOMAXPROCS goroutines.
	shardRows(m, runtime.GOMAXPROCS(0), func(lo, hi int) {
		matMulRows(out, a, b, lo, hi)
	})
}

// matMulRows computes output rows [lo, hi).
func matMulRows(out, a, b *Tensor, lo, hi int) {
	k, n := a.Shape[1], b.Shape[1]
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransA computes aᵀ × b for a of shape (k,m) and b of shape (k,n),
// yielding (m,n). Used for weight gradients without materialising aᵀ.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA dim mismatch %v x %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransB computes a × bᵀ for a of shape (m,k) and b of shape (n,k),
// yielding (m,n). Used for input gradients without materialising bᵀ.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB dim mismatch %v x %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose on %d-d tensor", len(a.Shape)))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// AddRowVector adds vector v (length n) to every row of a 2-D tensor (m,n).
func AddRowVector(a, v *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	if v.Size() != n {
		panic(fmt.Sprintf("tensor: AddRowVector dim mismatch %v + %v", a.Shape, v.Shape))
	}
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] += v.Data[j]
		}
	}
	return a
}

// SumRows returns the column-wise sum of a 2-D tensor: out[j] = Σ_i a[i][j].
func SumRows(a *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			out.Data[j] += row[j]
		}
	}
	return out
}

// Dot returns the dot product of two equal-length 1-D views.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
