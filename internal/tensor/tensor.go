// Package tensor implements dense numeric tensors and the linear-algebra
// kernels used by the neural-network engine. Tensors are row-major float64
// buffers with an explicit shape; all operations are deterministic and
// allocation behaviour is documented so that per-batch memory footprints can
// be accounted exactly (the paper's Fig 6 metric).
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major n-dimensional array of float64.
//
// The zero value is an empty tensor. Tensors returned by New are fully
// initialised; Data aliases the underlying buffer, so callers that need an
// independent copy must use Clone.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is aliased,
// not copied. It panics if the element count does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, got %d", shape, n, len(data)))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: data}
}

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Bytes returns the in-memory size of the tensor payload in bytes
// (8 bytes per float64). Used for per-batch footprint accounting.
func (t *Tensor) Bytes() int { return 8 * t.Size() }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape sharing the same data.
// It panics if the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != t.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set writes the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Apply replaces each element x with f(x) in place and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, x := range t.Data {
		t.Data[i] = f(x)
	}
	return t
}

// Map returns a new tensor whose elements are f applied to t's elements.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	c := New(t.Shape...)
	for i, x := range t.Data {
		c.Data[i] = f(x)
	}
	return c
}

// AddInPlace adds o element-wise into t. Shapes must match exactly.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	if t.Size() != o.Size() {
		panic(fmt.Sprintf("tensor: add size mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
	return t
}

// SubInPlace subtracts o element-wise from t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	if t.Size() != o.Size() {
		panic(fmt.Sprintf("tensor: sub size mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] -= o.Data[i]
	}
	return t
}

// MulInPlace multiplies t by o element-wise (Hadamard product).
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	if t.Size() != o.Size() {
		panic(fmt.Sprintf("tensor: mul size mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] *= o.Data[i]
	}
	return t
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AxpyInPlace performs t += alpha*o.
func (t *Tensor) AxpyInPlace(alpha float64, o *Tensor) *Tensor {
	if t.Size() != o.Size() {
		panic(fmt.Sprintf("tensor: axpy size mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] += alpha * o.Data[i]
	}
	return t
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) *Tensor { return t.Clone().AddInPlace(o) }

// Sub returns t - o as a new tensor.
func Sub(t, o *Tensor) *Tensor { return t.Clone().SubInPlace(o) }

// Mul returns the element-wise product as a new tensor.
func Mul(t, o *Tensor) *Tensor { return t.Clone().MulInPlace(o) }

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, x := range t.Data {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if t.Size() == 0 {
		return 0
	}
	return t.Sum() / float64(t.Size())
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if t.Size() == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, x := range t.Data[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if t.Size() == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, x := range t.Data[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Norm2 returns the L2 norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, x := range t.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

// Row returns row i of a 2-D tensor as an aliased slice.
func (t *Tensor) Row(i int) []float64 {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on %d-d tensor", len(t.Shape)))
	}
	cols := t.Shape[1]
	return t.Data[i*cols : (i+1)*cols]
}

// String renders small tensors fully and large ones by shape summary.
func (t *Tensor) String() string {
	if t.Size() > 64 {
		return fmt.Sprintf("Tensor%v{%d elems, |x|=%.4g}", t.Shape, t.Size(), t.Norm2())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.Shape)
	for i, x := range t.Data {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", x)
	}
	b.WriteString("]")
	return b.String()
}

// Equal reports whether two tensors have identical shape and elements within
// tolerance eps.
func Equal(a, b *Tensor, eps float64) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > eps {
			return false
		}
	}
	return true
}
