package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(3, 4, 5)
	if x.Size() != 60 {
		t.Fatalf("Size = %d, want 60", x.Size())
	}
	if x.Bytes() != 480 {
		t.Fatalf("Bytes = %d, want 480", x.Bytes())
	}
	if x.Dims() != 3 || x.Dim(1) != 4 {
		t.Fatalf("bad dims: %v", x.Shape)
	}
}

func TestFromSliceAliases(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice must alias the input slice")
	}
}

func TestFromSliceBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched shape")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3)
	x.Set(7.5, 1, 2)
	if got := x.At(1, 2); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if x.Data[5] != 7.5 {
		t.Fatalf("row-major offset wrong: %v", x.Data)
	}
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 100
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("Reshape must share data")
	}
	if y.At(2, 1) != 6 {
		t.Fatalf("reshape indexing wrong: %v", y)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	if got := Add(a, b); !Equal(got, FromSlice([]float64{11, 22, 33}, 3), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !Equal(got, FromSlice([]float64{9, 18, 27}, 3), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !Equal(got, FromSlice([]float64{10, 40, 90}, 3), 0) {
		t.Fatalf("Mul = %v", got)
	}
	c := a.Clone().ScaleInPlace(2)
	if !Equal(c, FromSlice([]float64{2, 4, 6}, 3), 0) {
		t.Fatalf("Scale = %v", c)
	}
	d := a.Clone().AxpyInPlace(0.5, b)
	if !Equal(d, FromSlice([]float64{6, 12, 18}, 3), 0) {
		t.Fatalf("Axpy = %v", d)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 4, 2, -5}, 4)
	if x.Sum() != 0 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 0 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Max() != 4 {
		t.Fatalf("Max = %v", x.Max())
	}
	if x.Min() != -5 {
		t.Fatalf("Min = %v", x.Min())
	}
	want := math.Sqrt(1 + 16 + 4 + 25)
	if math.Abs(x.Norm2()-want) > 1e-12 {
		t.Fatalf("Norm2 = %v, want %v", x.Norm2(), want)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulTransposedVariantsAgree(t *testing.T) {
	rng := NewRNG(7)
	a := New(4, 6)
	b := New(6, 5)
	rng.FillNorm(a, 0, 1)
	rng.FillNorm(b, 0, 1)

	// aᵀ via TransA should equal Transpose(a) × b.
	at := Transpose(a) // (6,4)
	got := MatMulTransA(at, b)
	want := MatMul(a, b)
	if !Equal(got, want, 1e-10) {
		t.Fatal("MatMulTransA disagrees with MatMul")
	}

	// bᵀ via TransB should equal a × Transpose(bᵀ).
	bt := Transpose(b) // (5,6)
	got2 := MatMulTransB(a, bt)
	if !Equal(got2, want, 1e-10) {
		t.Fatal("MatMulTransB disagrees with MatMul")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a := New(m, n)
		rng.FillNorm(a, 0, 1)
		return Equal(Transpose(Transpose(a)), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a := New(3, 4)
		b := New(4, 5)
		c := New(5, 2)
		rng.FillNorm(a, 0, 1)
		rng.FillNorm(b, 0, 1)
		rng.FillNorm(c, 0, 1)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float64{10, 20}, 2)
	AddRowVector(a, v)
	if !Equal(a, FromSlice([]float64{11, 22, 13, 24}, 2, 2), 0) {
		t.Fatalf("AddRowVector = %v", a)
	}
	s := SumRows(a)
	if !Equal(s, FromSlice([]float64{24, 46}, 2), 0) {
		t.Fatalf("SumRows = %v", s)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(3)
	n := 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm invalid at %d", v)
		}
		seen[v] = true
	}
}

func TestRNGParetoIsHeavyTailed(t *testing.T) {
	r := NewRNG(11)
	n := 20000
	over := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(1.2)
		if v < 1 {
			t.Fatalf("Pareto below support: %v", v)
		}
		if v > 10 {
			over++
		}
	}
	// P(X>10) = 10^-1.2 ≈ 0.063 for Pareto(1, 1.2).
	frac := float64(over) / float64(n)
	if frac < 0.04 || frac > 0.09 {
		t.Fatalf("Pareto tail fraction = %v, want ~0.063", frac)
	}
}

func TestGlorotUniformBounds(t *testing.T) {
	r := NewRNG(5)
	w := New(64, 32)
	r.GlorotUniform(w, 64, 32)
	limit := math.Sqrt(6.0 / 96.0)
	if w.Max() > limit || w.Min() < -limit {
		t.Fatalf("Glorot out of bounds: [%v, %v] limit %v", w.Min(), w.Max(), limit)
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Fatalf("Glorot mean = %v, want ~0", w.Mean())
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Sizes straddling the parallel threshold must agree exactly with a
	// plain triple-loop reference.
	rng := NewRNG(21)
	for _, dims := range [][3]int{{3, 4, 5}, {64, 64, 64}, {200, 150, 180}, {1, 500, 700}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := New(m, k)
		b := New(k, n)
		rng.FillNorm(a, 0, 1)
		rng.FillNorm(b, 0, 1)
		got := MatMul(a, b)
		want := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for p := 0; p < k; p++ {
					s += a.Data[i*k+p] * b.Data[p*n+j]
				}
				want.Data[i*n+j] = s
			}
		}
		if !Equal(got, want, 1e-9) {
			t.Fatalf("parallel MatMul mismatch at %v", dims)
		}
	}
}

func TestMatMulIntoReusesBuffer(t *testing.T) {
	rng := NewRNG(22)
	a := New(80, 90)
	b := New(90, 70)
	rng.FillNorm(a, 0, 1)
	rng.FillNorm(b, 0, 1)
	out := New(80, 70)
	out.Fill(123) // stale contents must be overwritten, not accumulated
	MatMulInto(out, a, b)
	want := MatMul(a, b)
	if !Equal(out, want, 1e-12) {
		t.Fatal("MatMulInto did not overwrite stale buffer contents")
	}
}
