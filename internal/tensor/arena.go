package tensor

import (
	"fmt"
	"sync"
)

// Arena is a bump allocator for inference scratch tensors. Get carves
// zero-filled tensors out of one float64 slab and Reset reclaims them all at
// once, so a forward pass that runs entirely inside an arena performs no heap
// allocation once the slab has grown to the pass's high-water mark. Tensor
// headers and their Shape slices are pooled and reused across cycles.
//
// An Arena is not safe for concurrent use; share arenas across goroutines
// through an ArenaPool. Tensors returned by Get are only valid until the next
// Reset — callers that need the data afterwards must copy it out.
type Arena struct {
	slab     []float64
	off      int // elements of slab handed out this cycle
	overflow int // elements served outside the slab this cycle

	// The int8 and int32 slabs serve quantised-activation scratch (GetI8,
	// GetI32) with the same bump/Reset/regrow cycle as the float slab. They
	// start empty and only ever grow on arenas that actually run the
	// quantised kernels.
	i8slab     []int8
	i8off      int
	i8overflow int

	i32slab     []int32
	i32off      int
	i32overflow int

	headers []*Tensor
	hused   int
}

// NewArena returns an arena with an initial slab of the given element
// capacity. The slab grows on Reset to cover any overflow observed during the
// previous cycle, so steady-state workloads stop allocating after warm-up.
func NewArena(capacity int) *Arena {
	if capacity < 0 {
		panic(fmt.Sprintf("tensor: negative arena capacity %d", capacity))
	}
	return &Arena{slab: make([]float64, capacity)}
}

// Get returns a zero-filled tensor of the given shape backed by the arena.
// When the slab is exhausted the tensor falls back to a fresh heap buffer and
// the shortfall is recorded so the next Reset can grow the slab.
func (a *Arena) Get(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			// A plain panic string keeps the variadic shape slice from
			// escaping to the heap, which would cost one allocation per Get.
			panic("tensor: negative dimension in arena Get")
		}
		n *= d
	}
	var data []float64
	if a.off+n <= len(a.slab) {
		data = a.slab[a.off : a.off+n : a.off+n]
		a.off += n
		for i := range data {
			data[i] = 0
		}
	} else {
		data = make([]float64, n)
		a.overflow += n
	}
	t := a.header()
	t.Shape = append(t.Shape[:0], shape...)
	t.Data = data
	return t
}

// GetI8 returns an int8 scratch slice of length n backed by the arena. The
// contents are unspecified — callers must overwrite every element (the
// quantisation kernels do). Like Get, exhaustion falls back to a heap slice
// and records the shortfall so the next Reset regrows the slab, keeping
// steady-state cycles allocation-free.
func (a *Arena) GetI8(n int) []int8 {
	if n < 0 {
		panic("tensor: negative length in arena GetI8")
	}
	if a.i8off+n <= len(a.i8slab) {
		s := a.i8slab[a.i8off : a.i8off+n : a.i8off+n]
		a.i8off += n
		return s
	}
	a.i8overflow += n
	return make([]int8, n)
}

// GetI32 returns an int32 scratch slice of length n backed by the arena,
// with the same unspecified-contents and regrow-on-Reset contract as GetI8.
// The quantised kernels use it for per-row activation metadata.
func (a *Arena) GetI32(n int) []int32 {
	if n < 0 {
		panic("tensor: negative length in arena GetI32")
	}
	if a.i32off+n <= len(a.i32slab) {
		s := a.i32slab[a.i32off : a.i32off+n : a.i32off+n]
		a.i32off += n
		return s
	}
	a.i32overflow += n
	return make([]int32, n)
}

// header returns a pooled *Tensor, minting a new one only the first time a
// cycle reaches this depth.
func (a *Arena) header() *Tensor {
	if a.hused < len(a.headers) {
		t := a.headers[a.hused]
		a.hused++
		return t
	}
	t := &Tensor{}
	a.headers = append(a.headers, t)
	a.hused++
	return t
}

// Reset reclaims every tensor handed out since the previous Reset. If the
// cycle overflowed the slab, the slab is regrown to the observed high-water
// mark so the next cycle stays allocation-free.
func (a *Arena) Reset() {
	if a.overflow > 0 {
		a.slab = make([]float64, a.off+a.overflow)
		a.overflow = 0
	}
	if a.i8overflow > 0 {
		a.i8slab = make([]int8, a.i8off+a.i8overflow)
		a.i8overflow = 0
	}
	if a.i32overflow > 0 {
		a.i32slab = make([]int32, a.i32off+a.i32overflow)
		a.i32overflow = 0
	}
	a.off = 0
	a.i8off = 0
	a.i32off = 0
	a.hused = 0
}

// ArenaPool hands out arenas to concurrent workers. Put resets the arena
// before returning it to the free list, so a pooled arena is always ready for
// a fresh cycle.
type ArenaPool struct {
	mu       sync.Mutex
	free     []*Arena
	capacity int
}

// NewArenaPool returns a pool whose arenas start with the given slab element
// capacity.
func NewArenaPool(capacity int) *ArenaPool {
	return &ArenaPool{capacity: capacity}
}

// Get returns an idle arena, minting one if the free list is empty.
func (p *ArenaPool) Get() *Arena {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free = p.free[:n-1]
		return a
	}
	return NewArena(p.capacity)
}

// Put resets the arena and returns it to the pool.
func (p *ArenaPool) Put(a *Arena) {
	a.Reset()
	p.mu.Lock()
	p.free = append(p.free, a)
	p.mu.Unlock()
}
