package tensor

import (
	"fmt"
	"math"
	"runtime"
)

// Int8Matrix is a weight matrix packed for symmetric int8 inference. The
// float matrix W of shape (In, Out) is quantised per *output column*:
// Scale[j] = max_i |W[i][j]| / 127, and Q holds round(W[i][j] / Scale[j]).
// Q is stored transposed — Q[j*In : (j+1)*In] is column j of W — so the
// inner product against a quantised activation row is a contiguous dot over
// both operands. An all-zero column keeps Scale[j] = 0 and its Q entries
// zero, which the kernels read as "this output column is exactly zero
// before bias".
//
// MaxErr records the largest absolute round-trip error
// |W[i][j] - Q·Scale[j]| observed while packing: the weight half of the
// quantisation error bound operators see in telemetry.
//
// P is the SWAR form of Q the hot kernels actually read: column-group-major,
// each uint64 holding four *bias-shifted* weight bytes (uw = q+128 ∈ [1,255])
// in 16-bit lanes — lane d of P[g*In + p] is column 4g+d at input row p, so
// one group's reduction walks P contiguously. The kernel multiplies each
// word by a bias-shifted activation byte ua = qa+63 ∈ [0,126] (activations
// quantise to ±63 — see QuantizeRowsInto); every lane product
// ua·uw ≤ 32130 fits 15 bits, so one 64-bit multiply performs four MACs
// *and* two neighbouring products can be added lane-wise without masking
// before the even/odd extraction, halving the extraction work. The biases
// are undone after the reduction:
//
//	Σ qa·qw = Σ ua·uw − 128·Σqa − Corr[j]
//
// where Corr[j] = 63·Σ_p Q[j][p] + 63·128·In is precomputed per column at
// pack time (padded to 4·Groups entries; padding lanes of P hold 0).
// Groups = ceil(Out/4). Mostly-zero activation rows skip the dense
// reduction entirely: dotGroup4Sparse walks only the nonzero entries and
// re-derives the weight-bias correction from the words it touched, which is
// bit-identical to the Corr form (see emitGroup4Sparse).
type Int8Matrix struct {
	In, Out int
	Q       []int8
	Scale   []float64
	MaxErr  float64

	Groups int
	P      []uint64
	Corr   []int32
}

// QuantizeColumns packs a float (In, Out) matrix into an Int8Matrix with
// per-output-column scales. It allocates; callers pack once per weight swap,
// never on the predict path.
func QuantizeColumns(w *Tensor) *Int8Matrix {
	if len(w.Shape) != 2 {
		panic(fmt.Sprintf("tensor: QuantizeColumns wants a 2-d matrix, got %v", w.Shape))
	}
	k, n := w.Shape[0], w.Shape[1]
	q := &Int8Matrix{In: k, Out: n, Q: make([]int8, k*n), Scale: make([]float64, n)}
	for j := 0; j < n; j++ {
		amax := 0.0
		for i := 0; i < k; i++ {
			if a := math.Abs(w.Data[i*n+j]); a > amax {
				amax = a
			}
		}
		if amax == 0 {
			continue // Scale[j] stays 0, column stays all-zero
		}
		s := amax / 127
		inv := 127 / amax
		q.Scale[j] = s
		col := q.Q[j*k : (j+1)*k]
		for i := 0; i < k; i++ {
			v := w.Data[i*n+j]
			qv := int8(math.Round(v * inv))
			col[i] = qv
			if e := math.Abs(v - float64(qv)*s); e > q.MaxErr {
				q.MaxErr = e
			}
		}
	}
	q.packSWAR()
	return q
}

// swarMaxIn bounds In so the 32-bit SWAR accumulator lanes cannot overflow
// (each lane gathers at most In products of 126·255 = 32130, and
// 2^31/32130 ≈ 66k) and the int32 column corrections stay exact
// (16065·In < 2^31).
const swarMaxIn = 1 << 15

// packSWAR builds the bias-shifted column-group-major packed form and the
// per-column bias corrections from Q.
func (q *Int8Matrix) packSWAR() {
	if q.In > swarMaxIn {
		panic(fmt.Sprintf("tensor: int8 input dim %d exceeds SWAR accumulator range", q.In))
	}
	k, n := q.In, q.Out
	g := (n + 3) / 4
	q.Groups = g
	q.P = make([]uint64, g*k)
	q.Corr = make([]int32, 4*g)
	for j := 0; j < n; j++ {
		col := q.Q[j*k : (j+1)*k]
		shift := uint(j%4) * 16
		grp := q.P[(j/4)*k : (j/4+1)*k]
		colSum := int32(0)
		for p := 0; p < k; p++ {
			colSum += int32(col[p])
			uw := uint64(uint8(int16(col[p]) + 128))
			grp[p] |= uw << shift
		}
		q.Corr[j] = 63*colSum + 63*128*int32(k)
	}
}

// swarMask selects the even 16-bit lanes of a SWAR product so they can be
// accumulated in 32-bit slots without cross-lane carries.
const swarMask = 0x0000ffff0000ffff

// swarMaskVar is swarMask in a package variable: the hot loops read it from
// a register instead of rematerialising the 10-byte immediate at every use,
// which the compiler otherwise does four times per unrolled iteration.
var swarMaskVar uint64 = swarMask

// dotGroup4 reduces one packed column group against a bias-shifted
// activation row: it returns the four unsigned biased column sums
// Σ_p ua[p]·uw[col][p] for the group's columns, with even lanes (columns
// 4g, 4g+2) in the 32-bit halves of e and odd lanes (4g+1, 4g+3) in o.
// len(pw) must equal len(ub). Lane products fit 15 bits, so neighbouring
// words add lane-wise before the masked even/odd extraction — one
// extraction pass per two words, eight MACs.
func dotGroup4(pw []uint64, ub []int8) (e, o uint64) {
	n := len(ub)
	pw = pw[:n] // one bounds check, then every indexed load below is provably in range
	mask := swarMaskVar
	var e0, o0, e1, o1 uint64
	p := 0
	for ; p < n-3; p += 4 {
		t0 := uint64(uint8(ub[p]))*pw[p] + uint64(uint8(ub[p+1]))*pw[p+1]
		t1 := uint64(uint8(ub[p+2]))*pw[p+2] + uint64(uint8(ub[p+3]))*pw[p+3]
		e0 += t0 & mask
		o0 += (t0 >> 16) & mask
		e1 += t1 & mask
		o1 += (t1 >> 16) & mask
	}
	for ; p < n; p++ {
		m := uint64(uint8(ub[p])) * pw[p]
		e0 += m & mask
		o0 += (m >> 16) & mask
	}
	return e0 + e1, o0 + o1
}

// dotGroup4Sparse reduces one packed column group against only the nonzero
// entries of a bias-shifted activation row, listed in idx. Alongside the
// biased sums e/o it accumulates the masked lane sums se/so of the weight
// words it touched, which emitGroup4Sparse needs to undo the weight bias:
// skipped entries carry ua = 63 exactly, so
//
//	Σ_all ua·uw = Σ_nz ua·uw + 63·(Σ_all uw − Σ_nz uw)
//
// and the full-row correction collapses to Σ qa·qw = e − 63·se − 128·Σqa
// per lane — the per-column Corr table cancels, keeping the sparse path
// bit-identical to the dense one. Worth it when the row is mostly zeros:
// tree-node feature encodings run at ~0.4% density, so the widest layer's
// reduction shrinks from In words to a handful.
func dotGroup4Sparse(pw []uint64, ub []int8, idx []uint16) (e, o, se, so uint64) {
	mask := swarMaskVar
	for _, p := range idx {
		w := pw[p]
		t := uint64(uint8(ub[p])) * w
		e += t & mask
		o += (t >> 16) & mask
		se += w & mask
		so += (w >> 16) & mask
	}
	return
}

// dotGroup4x2 is dotGroup4 over two activation rows at once: each packed
// weight word is loaded once and multiplied by both rows' bytes, halving
// weight traffic — the term that grows at paper-scale widths, where one
// matrix's packed form overflows L1. len(pw), len(ub1) must equal len(ub0).
func dotGroup4x2(pw []uint64, ub0, ub1 []int8) (e0, o0, e1, o1 uint64) {
	n := len(ub0)
	pw = pw[:n]
	ub1 = ub1[:n]
	mask := swarMaskVar
	p := 0
	for ; p < n-1; p += 2 {
		w0 := pw[p]
		w1 := pw[p+1]
		t0 := uint64(uint8(ub0[p]))*w0 + uint64(uint8(ub0[p+1]))*w1
		t1 := uint64(uint8(ub1[p]))*w0 + uint64(uint8(ub1[p+1]))*w1
		e0 += t0 & mask
		o0 += (t0 >> 16) & mask
		e1 += t1 & mask
		o1 += (t1 >> 16) & mask
	}
	if p < n {
		w0 := pw[p]
		m0 := uint64(uint8(ub0[p])) * w0
		m1 := uint64(uint8(ub1[p])) * w0
		e0 += m0 & mask
		o0 += (m0 >> 16) & mask
		e1 += m1 & mask
		o1 += (m1 >> 16) & mask
	}
	return
}

// QuantizeRowsInto quantises each row of the float activations x (m, k)
// symmetrically to ±63 with one scale per row: scales[i] = max_p |x[i][p]|
// / 63 and the row's bytes hold the *bias-shifted* values qa+63 ∈ [0,126]
// the SWAR kernels consume directly (an exact zero stores 63). An all-zero
// row keeps scale 0. Activations take 7 bits rather than 8 so the kernels
// can add two lane products without masking (126·255·2 < 2^16); weights
// keep the full ±127 range, so the combined step size grows by only the
// activation half.
//
// meta carries two int32s per row the kernels would otherwise re-derive
// per GEMM: meta[2i] = 128·Σqa (the activation-bias correction) and
// meta[2i+1] = the count of nonzero qa (the sparsity probe that picks the
// kernel per row). Quantising once and shifting in place is what lets one
// operand feed several GEMMs — the tree kernels reduce every row up to
// three times (parent, left, right) — without re-scanning it each time.
//
// It writes every element of q[:m*k], scales[:m] and meta[:2m] and returns
// the largest absolute round-trip error observed — the activation half of
// the quantisation error bound. No allocation: all three are caller
// scratch (typically arena-backed).
func QuantizeRowsInto(q []int8, scales []float64, meta []int32, x *Tensor) float64 {
	if len(x.Shape) != 2 {
		panic(fmt.Sprintf("tensor: QuantizeRowsInto wants a 2-d matrix, got %v", x.Shape))
	}
	m, k := x.Shape[0], x.Shape[1]
	if len(q) < m*k || len(scales) < m || len(meta) < 2*m {
		panic("tensor: QuantizeRowsInto scratch shorter than activations")
	}
	maxErr := 0.0
	for i := 0; i < m; i++ {
		row := x.Data[i*k : (i+1)*k]
		amax := 0.0
		for _, v := range row {
			if a := math.Abs(v); a > amax {
				amax = a
			}
		}
		qrow := q[i*k : (i+1)*k]
		if amax == 0 {
			scales[i] = 0
			meta[2*i], meta[2*i+1] = 0, 0
			for p := range qrow {
				qrow[p] = 63
			}
			continue
		}
		s := amax / 63
		inv := 63 / amax
		scales[i] = s
		var rs, nnz int32
		for p, v := range row {
			// Exact zeros round-trip exactly and dominate tree-node
			// encodings, so they skip the round and error bookkeeping.
			if v == 0 {
				qrow[p] = 63
				continue
			}
			qv := int32(math.Round(v * inv))
			qrow[p] = int8(qv + 63)
			rs += qv
			if qv != 0 {
				nnz++
			}
			if e := math.Abs(v - float64(qv)*s); e > maxErr {
				maxErr = e
			}
		}
		meta[2*i] = 128 * rs
		meta[2*i+1] = nnz
	}
	return maxErr
}

// DotInt8 returns the integer dot product of two equal-length int8 vectors,
// accumulated in int32. With |q| <= 127 each term is at most 16129, so the
// accumulator is exact for vectors up to ~133k elements — far beyond any
// layer width here. The loop is unrolled 4-wide across independent
// accumulators to keep the integer pipeline full.
func DotInt8(a, b []int8) int32 {
	n := len(a)
	b = b[:n] // one bounds check, then the indexed loads below are provably in range
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	for ; i < n; i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s0 + s1 + s2 + s3
}

// Int8MatMulInto computes out = dequant(q · Wᵀ) (+ bias) (with optional
// ReLU) for row-quantised activations of logical shape (m, w.In) — the
// bias-shifted bytes, scales and per-row meta produced by QuantizeRowsInto
// — against a column-quantised weight matrix w. Each output element
// accumulates in int32 and dequantises with the fused factor
// scales[i]*w.Scale[j]; bias (length w.Out) may be nil. The ReLU uses the
// same !(v > 0) clamp as the float path, so NaN maps to 0 identically.
// Large products shard rows through the shared worker budget exactly like
// MatMulInto.
func Int8MatMulInto(out *Tensor, q []int8, scales []float64, meta []int32, w *Int8Matrix, bias []float64, relu bool) {
	m, n := out.Shape[0], out.Shape[1]
	k := w.In
	if n != w.Out {
		panic(fmt.Sprintf("tensor: Int8MatMulInto out width %d, weights yield %d", n, w.Out))
	}
	if len(q) < m*k || len(scales) < m || len(meta) < 2*m {
		panic("tensor: Int8MatMulInto activations shorter than out rows")
	}
	if bias != nil && len(bias) < n {
		panic("tensor: Int8MatMulInto bias shorter than out width")
	}
	if m*k*n < parallelFlopThreshold {
		int8Rows(out, q, scales, meta, w, bias, relu, 0, m)
		return
	}
	shardRows(m, runtime.GOMAXPROCS(0), func(lo, hi int) {
		int8Rows(out, q, scales, meta, w, bias, relu, lo, hi)
	})
}

// int8IdxBuf is the per-row capacity of the stack-resident nonzero-index
// scratch of the sparse kernel.
const int8IdxBuf = 512

// int8SparseCut picks the kernel per row: the sparse reduction costs about
// int8SparseCut× more per touched element than the dense one, so a row goes
// sparse only when nnz·int8SparseCut < In (and its index list fits the
// scratch).
const int8SparseCut = 5

// sparseRow reports whether a row with the given nonzero count should take
// the sparse kernel.
func sparseRow(nnz, k int) bool {
	return nnz <= int8IdxBuf && nnz*int8SparseCut < k
}

// emitGroup4 turns one group's biased lane sums into output columns
// j..j+3 (clipped to the matrix width): it undoes the weight bias via
// Corr and the activation bias via bc, then fuses dequantise + bias +
// ReLU. Biased lane sums are < 2^31, so the int32 narrowings are exact;
// subtracting Corr before the activation-bias term keeps every
// intermediate inside int32 range.
func emitGroup4(orow []float64, w *Int8Matrix, j int, e, o uint64, bc int32, sa float64, bias []float64, relu bool) {
	sv := [4]int32{
		int32(uint32(e)) - w.Corr[j] - bc,
		int32(uint32(o)) - w.Corr[j+1] - bc,
		int32(uint32(e>>32)) - w.Corr[j+2] - bc,
		int32(uint32(o>>32)) - w.Corr[j+3] - bc,
	}
	dequantGroup4(orow, w, j, &sv, sa, bias, relu)
}

// emitGroup4Sparse is the emitGroup4 counterpart for dotGroup4Sparse: the
// weight bias is undone with the touched-word lane sums (63·se) instead of
// the full-column Corr table, which cancels exactly for the entries the
// sparse reduction skipped. 63·se stays within each 32-bit lane: se lanes
// are at most 255·int8IdxBuf.
func emitGroup4Sparse(orow []float64, w *Int8Matrix, j int, e, o, se, so uint64, bc int32, sa float64, bias []float64, relu bool) {
	eb := 63 * se
	ob := 63 * so
	sv := [4]int32{
		int32(uint32(e)) - int32(uint32(eb)) - bc,
		int32(uint32(o)) - int32(uint32(ob)) - bc,
		int32(uint32(e>>32)) - int32(uint32(eb>>32)) - bc,
		int32(uint32(o>>32)) - int32(uint32(ob>>32)) - bc,
	}
	dequantGroup4(orow, w, j, &sv, sa, bias, relu)
}

// dequantGroup4 fuses dequantise + bias + ReLU over one group's exact int32
// column sums, clipped to the matrix width.
func dequantGroup4(orow []float64, w *Int8Matrix, j int, sv *[4]int32, sa float64, bias []float64, relu bool) {
	lim := len(orow) - j
	if lim > 4 {
		lim = 4
	}
	for d := 0; d < lim; d++ {
		v := float64(sv[d]) * (sa * w.Scale[j+d])
		if bias != nil {
			v += bias[j+d]
		}
		if relu && !(v > 0) {
			v = 0
		}
		orow[j+d] = v
	}
}

// int8Rows computes output rows [lo, hi) of Int8MatMulInto through the
// SWAR kernel. Activation rows arrive bias-shifted with their correction
// and nonzero count precomputed (QuantizeRowsInto), so the kernel reads
// them straight out of q: mostly-zero rows gather their nonzero indices
// and reduce only those entries, dense rows are taken in pairs so each
// packed weight word is loaded once for two reductions, and a
// lane-extraction pass undoes the biases and fuses dequantise + bias +
// ReLU. Sparse and dense reductions produce the same exact int32 sums, so
// kernel choice never changes output bits.
func int8Rows(out *Tensor, q []int8, scales []float64, meta []int32, w *Int8Matrix, bias []float64, relu bool, lo, hi int) {
	k, n, g := w.In, w.Out, w.Groups
	var ibuf [int8IdxBuf]uint16
	for i := lo; i < hi; {
		orow := out.Data[i*n : (i+1)*n]
		sa := scales[i]
		if sa == 0 {
			// All-zero activation row: the dot is exactly zero everywhere.
			for j := 0; j < n; j++ {
				var v float64
				if bias != nil {
					v = bias[j]
				}
				if relu && !(v > 0) {
					v = 0
				}
				orow[j] = v
			}
			i++
			continue
		}
		ub0 := q[i*k : (i+1)*k]
		bc0 := meta[2*i]
		if nnz := int(meta[2*i+1]); sparseRow(nnz, k) {
			c := 0
			for p := 0; p < k && c < nnz; p++ {
				if ub0[p] != 63 {
					ibuf[c] = uint16(p)
					c++
				}
			}
			idx := ibuf[:c]
			for gi := 0; gi < g; gi++ {
				e, o, se, so := dotGroup4Sparse(w.P[gi*k:(gi+1)*k], ub0, idx)
				emitGroup4Sparse(orow, w, gi*4, e, o, se, so, bc0, sa, bias, relu)
			}
			i++
			continue
		}
		if i+1 < hi && scales[i+1] != 0 && !sparseRow(int(meta[2*i+3]), k) {
			// Paired path: two dense rows share each weight load.
			orow1 := out.Data[(i+1)*n : (i+2)*n]
			ub1 := q[(i+1)*k : (i+2)*k]
			bc1 := meta[2*i+2]
			sb := scales[i+1]
			for gi := 0; gi < g; gi++ {
				e0, o0, e1, o1 := dotGroup4x2(w.P[gi*k:(gi+1)*k], ub0, ub1)
				emitGroup4(orow, w, gi*4, e0, o0, bc0, sa, bias, relu)
				emitGroup4(orow1, w, gi*4, e1, o1, bc1, sb, bias, relu)
			}
			i += 2
			continue
		}
		for gi := 0; gi < g; gi++ {
			e, o := dotGroup4(w.P[gi*k:(gi+1)*k], ub0)
			emitGroup4(orow, w, gi*4, e, o, bc0, sa, bias, relu)
		}
		i++
	}
}
