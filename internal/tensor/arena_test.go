package tensor

import "testing"

func TestArenaGetZeroedAndShaped(t *testing.T) {
	a := NewArena(16)
	x := a.Get(2, 3)
	if x.Shape[0] != 2 || x.Shape[1] != 3 || len(x.Data) != 6 {
		t.Fatalf("arena tensor shape %v len %d", x.Shape, len(x.Data))
	}
	for i := range x.Data {
		x.Data[i] = float64(i + 1)
	}
	a.Reset()
	// A post-Reset Get over the same slab region must come back zeroed.
	y := a.Get(2, 3)
	for i, v := range y.Data {
		if v != 0 {
			t.Fatalf("reused slab not zeroed at %d: %v", i, v)
		}
	}
}

func TestArenaTensorsDoNotOverlap(t *testing.T) {
	a := NewArena(8)
	x := a.Get(4)
	y := a.Get(4)
	x.Fill(1)
	y.Fill(2)
	for _, v := range x.Data {
		if v != 1 {
			t.Fatal("arena tensors share memory within a cycle")
		}
	}
}

func TestArenaOverflowGrowsOnReset(t *testing.T) {
	a := NewArena(2)
	// First cycle overflows the 2-element slab.
	x := a.Get(3, 3)
	x.Fill(7)
	a.Get(2)
	a.Reset()
	// The regrown slab must now hold both tensors without heap fallback.
	allocs := testing.AllocsPerRun(10, func() {
		a.Get(3, 3)
		a.Get(2)
		a.Reset()
	})
	if allocs != 0 {
		t.Fatalf("arena still allocates after growth: %v allocs/op", allocs)
	}
}

func TestArenaSteadyStateZeroAllocs(t *testing.T) {
	a := NewArena(0)
	// Warm up: grow slab and header pool to the cycle's high-water mark.
	for i := 0; i < 3; i++ {
		a.Get(8, 8)
		a.Get(1, 64)
		a.Get(16)
		a.Reset()
	}
	allocs := testing.AllocsPerRun(100, func() {
		a.Get(8, 8)
		a.Get(1, 64)
		a.Get(16)
		a.Reset()
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena cycle allocates: %v allocs/op", allocs)
	}
}

func TestArenaPoolReusesArenas(t *testing.T) {
	p := NewArenaPool(4)
	a := p.Get()
	x := a.Get(2)
	x.Fill(9)
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Fatal("pool did not reuse the idle arena")
	}
	// Put resets, so the next Get sees zeroed memory again.
	y := b.Get(2)
	for _, v := range y.Data {
		if v != 0 {
			t.Fatal("pooled arena not reset on Put")
		}
	}
}
