package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (xorshift64*) used for
// weight initialisation and workload synthesis. It avoids math/rand so that
// results are bit-stable across Go versions and so each component can own an
// independent, seedable stream.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant since xorshift requires non-zero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate via Box-Muller.
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exp returns an exponential variate with the given rate.
func (r *RNG) Exp(rate float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Pareto returns a Pareto(1, alpha) variate, used for the long-tail plan-size
// distribution of Fig 8.
func (r *RNG) Pareto(alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return math.Pow(u, -1/alpha)
}

// LogNorm returns a log-normal variate with the given log-space mean and std.
func (r *RNG) LogNorm(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// FillUniform fills t with uniform values in [lo, hi).
func (r *RNG) FillUniform(t *Tensor, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = r.Range(lo, hi)
	}
}

// FillNorm fills t with normal values of the given mean and std.
func (r *RNG) FillNorm(t *Tensor, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = mean + std*r.Norm()
	}
}

// GlorotUniform fills t with Glorot/Xavier uniform initialisation using the
// given fan-in and fan-out, the scheme used for all dense and convolution
// kernels in the paper's models.
func (r *RNG) GlorotUniform(t *Tensor, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	r.FillUniform(t, -limit, limit)
}
