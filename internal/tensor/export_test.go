package tensor

// Test hooks for the worker-budget instrumentation (see workers.go).

// ResetHelperPeak clears the recorded helper-goroutine high-water mark.
func ResetHelperPeak() {
	helperPeak.Store(0)
}

// HelperPeak reports the highest number of helper goroutines observed in
// flight at once since the last ResetHelperPeak.
func HelperPeak() int64 { return helperPeak.Load() }

// ParallelFlopThreshold exposes the m*k*n product above which the kernels
// fan out, so tests can size operands just past it.
const ParallelFlopThreshold = parallelFlopThreshold
